//! The value-feedback path from execution back to the optimization tables.
//!
//! Results computed by the execution units travel back to the rename stage
//! over a transmission path with a configurable delay (§2.2, §3.3, §6.4).
//! This module models that path as a time-stamped queue; the optimizer
//! drains entries whose arrival cycle has passed and CAM-updates the RAT
//! and MBC.

use crate::preg::PhysReg;
use std::collections::VecDeque;

/// A pending feedback message: `(arrives_at, register, value)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Feedback {
    /// Cycle at which the value reaches the optimization tables.
    pub arrives_at: u64,
    /// The physical register that produced the value.
    pub preg: PhysReg,
    /// The produced value.
    pub value: u64,
}

/// FIFO of in-flight feedback messages.
///
/// Completion events are pushed in non-decreasing cycle order (the pipeline
/// advances monotonically and the transmission delay is constant), so a
/// simple deque suffices.
#[derive(Debug, Clone, Default)]
pub struct FeedbackQueue {
    q: VecDeque<Feedback>,
}

impl FeedbackQueue {
    /// Creates an empty queue.
    pub fn new() -> FeedbackQueue {
        FeedbackQueue::default()
    }

    /// Enqueues a value produced at `completed_at` with transmission delay
    /// `delay`.
    pub fn push(&mut self, preg: PhysReg, value: u64, completed_at: u64, delay: u64) {
        let arrives_at = completed_at + delay;
        debug_assert!(
            self.q.back().is_none_or(|b| b.arrives_at <= arrives_at),
            "feedback must be pushed in arrival order"
        );
        self.q.push_back(Feedback {
            arrives_at,
            preg,
            value,
        });
    }

    /// Pops every message that has arrived by `now`.
    pub fn drain_ready(&mut self, now: u64) -> impl Iterator<Item = Feedback> + '_ {
        let mut n = 0;
        while n < self.q.len() && self.q[n].arrives_at <= now {
            n += 1;
        }
        self.q.drain(..n)
    }

    /// Pops the oldest message if it has arrived by `now`. Allocation-free
    /// alternative to [`drain_ready`](Self::drain_ready) for callers that
    /// interleave popping with table updates.
    pub fn pop_ready(&mut self, now: u64) -> Option<Feedback> {
        if self.q.front()?.arrives_at <= now {
            self.q.pop_front()
        } else {
            None
        }
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> PhysReg {
        PhysReg::from_index(i)
    }

    #[test]
    fn respects_transmission_delay() {
        let mut q = FeedbackQueue::new();
        q.push(p(1), 11, 10, 5);
        assert_eq!(q.drain_ready(14).count(), 0);
        let got: Vec<_> = q.drain_ready(15).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].preg, p(1));
        assert_eq!(got[0].value, 11);
    }

    #[test]
    fn drains_in_order() {
        let mut q = FeedbackQueue::new();
        q.push(p(1), 1, 10, 1);
        q.push(p(2), 2, 10, 1);
        q.push(p(3), 3, 12, 1);
        let got: Vec<_> = q.drain_ready(11).map(|f| f.preg).collect();
        assert_eq!(got, vec![p(1), p(2)]);
        assert_eq!(q.in_flight(), 1);
    }

    #[test]
    fn zero_delay_is_same_cycle() {
        let mut q = FeedbackQueue::new();
        q.push(p(4), 9, 7, 0);
        assert_eq!(q.drain_ready(7).count(), 1);
    }
}
