//! The symbolic register alias table (RAT).
//!
//! The ordinary RAT maps architectural to physical registers; continuous
//! optimization augments each entry with a [`SymValue`] describing the
//! register's contents symbolically (§3.1). Entries hold reference-counted
//! claims on both the mapping register and the symbolic base register.

use crate::preg::{PhysReg, PregFile};
use crate::symval::SymValue;
use contopt_isa::{ArchReg, NUM_ARCH_REGS};

#[derive(Debug, Clone, Copy)]
struct RatEntry {
    map: PhysReg,
    sym: SymValue,
}

/// The symbolic RAT: one entry per architectural register (both files).
///
/// The hardwired-zero registers permanently map to [`PhysReg::ZERO`] with a
/// known value of zero and are never written.
#[derive(Debug, Clone)]
pub struct SymRat {
    entries: Vec<RatEntry>,
}

impl SymRat {
    /// Creates the initial RAT. Every architectural register is given a
    /// fresh physical register whose architectural value is `initial(reg)`;
    /// when `track_known` is set (optimizing configurations) the entry's
    /// symbol records that value as known — the reset state of a register
    /// file is architecturally defined, so this mirrors hardware.
    ///
    /// # Panics
    ///
    /// Panics if the physical register file cannot supply one register per
    /// architectural register.
    #[expect(
        clippy::expect_used,
        reason = "the free list is sized to cover every architectural register"
    )]
    pub fn new(
        pregs: &mut PregFile,
        initial: impl Fn(ArchReg) -> u64,
        track_known: bool,
    ) -> SymRat {
        let mut entries = Vec::with_capacity(NUM_ARCH_REGS);
        for i in 0..NUM_ARCH_REGS {
            let a = ArchReg::from_index(i);
            let entry = if a.is_zero() {
                // Permanent claim on the zero register for each zero entry.
                pregs.add_ref(PhysReg::ZERO);
                RatEntry {
                    map: PhysReg::ZERO,
                    sym: if track_known {
                        SymValue::Known(0)
                    } else {
                        SymValue::reg(PhysReg::ZERO)
                    },
                }
            } else {
                let p = pregs.alloc().expect("physical registers for initial RAT");
                RatEntry {
                    map: p,
                    sym: if track_known {
                        SymValue::Known(initial(a))
                    } else {
                        SymValue::reg(p)
                    },
                }
            };
            // The symbolic base (plain self-reference in untracked mode)
            // carries its own claim, matching what `write` releases later.
            if let Some(b) = entry.sym.base() {
                pregs.add_ref(b);
            }
            entries.push(entry);
        }
        SymRat { entries }
    }

    /// The current mapping of `a`.
    #[inline]
    pub fn map(&self, a: ArchReg) -> PhysReg {
        self.entries[a.index()].map
    }

    /// The current symbolic value of `a`.
    #[inline]
    pub fn sym(&self, a: ArchReg) -> SymValue {
        self.entries[a.index()].sym
    }

    /// Renames `a` to `map` with symbol `sym`, adjusting reference counts
    /// (acquire new mapping + new base, release old mapping + old base).
    ///
    /// Writes to hardwired-zero registers are ignored.
    pub fn write(&mut self, a: ArchReg, map: PhysReg, sym: SymValue, pregs: &mut PregFile) {
        if a.is_zero() {
            return;
        }
        pregs.add_ref(map);
        if let Some(b) = sym.base() {
            pregs.add_ref(b);
        }
        let e = &mut self.entries[a.index()];
        pregs.release(e.map);
        if let Some(b) = e.sym.base() {
            pregs.release(b);
        }
        *e = RatEntry { map, sym };
    }

    /// Replaces only the symbolic value of `a` (mapping unchanged) —
    /// used by branch-direction inference and value feedback.
    pub fn update_sym(&mut self, a: ArchReg, sym: SymValue, pregs: &mut PregFile) {
        if a.is_zero() {
            return;
        }
        if let Some(b) = sym.base() {
            pregs.add_ref(b);
        }
        let e = &mut self.entries[a.index()];
        if let Some(b) = e.sym.base() {
            pregs.release(b);
        }
        e.sym = sym;
    }

    /// Invalidates all symbolic information: every entry's symbol becomes a
    /// plain reference to its current mapping (discrete optimization's
    /// trace-boundary reset, §3.4). Reference counts are adjusted.
    pub fn invalidate_syms(&mut self, pregs: &mut PregFile) {
        for (i, e) in self.entries.iter_mut().enumerate() {
            if ArchReg::from_index(i).is_zero() {
                continue; // hardwired zero is not table state
            }
            let plain = SymValue::reg(e.map);
            if e.sym == plain {
                continue;
            }
            pregs.add_ref(e.map);
            if let Some(b) = e.sym.base() {
                pregs.release(b);
            }
            e.sym = plain;
        }
    }

    /// CAM-style value feedback: converts every entry whose symbolic base is
    /// `p` into a known constant. Returns the number converted.
    pub fn feed_back(&mut self, p: PhysReg, v: u64, pregs: &mut PregFile) -> u64 {
        let mut converted = 0;
        for e in &mut self.entries {
            if let Some(k) = e.sym.feed_back(p, v) {
                e.sym = k;
                pregs.release(p);
                converted += 1;
            }
        }
        converted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contopt_isa::{r, Reg};

    fn setup() -> (SymRat, PregFile) {
        let mut pregs = PregFile::new(256);
        let rat = SymRat::new(&mut pregs, |_| 0, true);
        (rat, pregs)
    }

    #[test]
    fn initial_state_known_zero() {
        let (rat, pregs) = setup();
        let a = ArchReg::from(r(5));
        assert_eq!(rat.sym(a), SymValue::Known(0));
        assert!(pregs.is_live(rat.map(a)));
        assert_eq!(rat.map(ArchReg::from(Reg::R31)), PhysReg::ZERO);
    }

    #[test]
    fn untracked_mode_gives_plain_syms() {
        let mut pregs = PregFile::new(256);
        let rat = SymRat::new(&mut pregs, |_| 7, false);
        let a = ArchReg::from(r(1));
        assert_eq!(rat.sym(a), SymValue::reg(rat.map(a)));
    }

    #[test]
    fn write_swaps_references() {
        let (mut rat, mut pregs) = setup();
        let a = ArchReg::from(r(3));
        let old = rat.map(a);
        pregs.add_ref(old); // keep it observable after the swap
        let p = pregs.alloc().unwrap();
        rat.write(a, p, SymValue::reg(p), &mut pregs);
        assert_eq!(rat.map(a), p);
        assert_eq!(pregs.ref_count(old), 1, "only our probe ref remains");
        assert_eq!(pregs.ref_count(p), 3, "producer + mapping + sym base");
    }

    #[test]
    fn zero_register_writes_ignored() {
        let (mut rat, mut pregs) = setup();
        let z = ArchReg::from(Reg::R31);
        let p = pregs.alloc().unwrap();
        rat.write(z, p, SymValue::reg(p), &mut pregs);
        assert_eq!(rat.map(z), PhysReg::ZERO);
        assert_eq!(pregs.ref_count(p), 1, "no refs taken");
    }

    #[test]
    fn symbolic_base_kept_alive_past_overwrite() {
        let (mut rat, mut pregs) = setup();
        let a = ArchReg::from(r(1));
        let b = ArchReg::from(r(2));
        let p = pregs.alloc().unwrap();
        rat.write(a, p, SymValue::reg(p), &mut pregs);
        pregs.release(p); // producer completes
                          // b's symbol references p (reassociation).
        let q = pregs.alloc().unwrap();
        rat.write(
            b,
            q,
            SymValue::Expr {
                base: p,
                scale: 0,
                offset: 8,
            },
            &mut pregs,
        );
        // Overwrite a: p loses its mapping ref but survives as b's base.
        let n = pregs.alloc().unwrap();
        rat.write(a, n, SymValue::reg(n), &mut pregs);
        assert!(pregs.is_live(p), "kept alive by b's symbolic base");
        // Overwrite b too: p finally dies.
        let m = pregs.alloc().unwrap();
        rat.write(b, m, SymValue::reg(m), &mut pregs);
        assert!(!pregs.is_live(p));
    }

    #[test]
    fn invalidate_syms_demotes_everything() {
        let (mut rat, mut pregs) = setup();
        let a = ArchReg::from(r(1));
        let p = pregs.alloc().unwrap();
        rat.write(a, p, SymValue::Known(77), &mut pregs);
        let b = ArchReg::from(r(2));
        let q = pregs.alloc().unwrap();
        rat.write(
            b,
            q,
            SymValue::Expr {
                base: p,
                scale: 1,
                offset: 3,
            },
            &mut pregs,
        );
        rat.invalidate_syms(&mut pregs);
        assert_eq!(rat.sym(a), SymValue::reg(p));
        assert_eq!(rat.sym(b), SymValue::reg(q));
        // p lost its symbolic-base claim from b, kept mapping + producer.
        assert_eq!(pregs.ref_count(p), 3);
        // Hardwired zero keeps its known-zero symbol.
        assert_eq!(
            rat.sym(ArchReg::from(Reg::R31)),
            SymValue::Known(0),
            "zero registers are not table state"
        );
    }

    #[test]
    fn feedback_converts_all_referencing_entries() {
        let (mut rat, mut pregs) = setup();
        let p = pregs.alloc().unwrap();
        let a = ArchReg::from(r(1));
        let b = ArchReg::from(r(2));
        rat.write(a, p, SymValue::reg(p), &mut pregs);
        let q = pregs.alloc().unwrap();
        rat.write(
            b,
            q,
            SymValue::Expr {
                base: p,
                scale: 1,
                offset: 4,
            },
            &mut pregs,
        );
        let n = rat.feed_back(p, 10, &mut pregs);
        assert_eq!(n, 2);
        assert_eq!(rat.sym(a), SymValue::Known(10));
        assert_eq!(rat.sym(b), SymValue::Known(24));
    }

    #[test]
    fn update_sym_keeps_mapping() {
        let (mut rat, mut pregs) = setup();
        let a = ArchReg::from(r(4));
        let p = pregs.alloc().unwrap();
        rat.write(a, p, SymValue::reg(p), &mut pregs);
        rat.update_sym(a, SymValue::Known(0), &mut pregs);
        assert_eq!(rat.map(a), p);
        assert_eq!(rat.sym(a), SymValue::Known(0));
        assert_eq!(pregs.ref_count(p), 2, "producer + mapping; base ref gone");
    }
}
