//! # contopt — continuous optimization
//!
//! A faithful implementation of the table-based hardware dynamic optimizer
//! from *Continuous Optimization* (Fahs, Rafacz, Patel & Lumetta, ISCA
//! 2005 / UILU-ENG-04-2207). The optimizer lives in the rename stage of an
//! out-of-order processor and applies dataflow optimizations to **every**
//! fetched instruction — no profiling, no trace cache:
//!
//! * **Constant propagation / reassociation (CP/RA)** — each architectural
//!   register's RAT entry carries a symbolic value
//!   `(base_preg << scale) ± offset` ([`SymValue`]); adds, subtracts,
//!   shifts, and scaled adds fold into it ([`sym_add`], [`sym_shl`], …).
//! * **Redundant load elimination / store forwarding (RLE/SF)** — a
//!   128-entry [`Mbc`] keyed by aligned address + offset + size forwards
//!   recently stored or loaded values, converting loads into moves.
//! * **Value feedback** — execution results return to the tables after a
//!   transmission delay ([`FeedbackQueue`]) and CAM-convert symbolic
//!   entries into known constants.
//! * **Early execution** — simple instructions with fully known inputs
//!   execute on the rename-stage ALUs ([`Optimizer::rename_bundle`]
//!   returns them as [`RenamedClass::Done`]), including early branch
//!   resolution, which shortens the misprediction penalty.
//!
//! Physical registers are managed by a reference-counting file
//! ([`PregFile`]) because optimization extends register lifetimes past the
//! classic deallocation point (§3.1).
//!
//! Each optimization is a pluggable pass unit behind the [`OptPass`]
//! trait (see the [`passes`] module); a [`PassSet`] compiles down to the
//! flat [`OptimizerConfig`] the rename engine executes, and the two
//! bridge losslessly in both directions.
//!
//! # Examples
//!
//! Drive a whole simulation through the `contopt_sim` builder facade —
//! the passes registered here are this crate's pass units:
//!
//! ```
//! use contopt_sim::{Pass, SimSession};
//! use contopt_sim::isa::{Asm, r};
//!
//! let mut a = Asm::new();
//! a.li(r(1), 40);
//! a.addq(r(1), 2, r(2));
//! a.halt();
//!
//! let session = SimSession::builder()
//!     .program(a.finish()?)
//!     .passes([Pass::cp_ra(), Pass::rle_sf(), Pass::value_feedback(), Pass::early_exec()])
//!     .build()?;
//! let report = session.run();
//! // Both instructions arrive in one 4-wide rename packet: the `li`
//! // executes on the rename-stage ALUs, while the dependent add is
//! // serial-addition-limited (§3.1) and goes to the OoO core.
//! assert_eq!(report.optimizer.executed_early, 1);
//! assert_eq!(report.optimizer.chain_limited, 1);
//! assert_eq!(report.pipeline.dispatched_to_ooo, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Or use the rename/optimize unit directly, one bundle at a time:
//!
//! ```
//! use contopt::{Optimizer, OptimizerConfig, RenameReq, RenamedClass};
//! use contopt_emu::{Emulator, Step};
//! use contopt_isa::{Asm, r};
//!
//! let mut a = Asm::new();
//! a.li(r(1), 40);
//! a.addq(r(1), 2, r(2));
//! a.halt();
//! let mut emu = Emulator::new(a.finish()?);
//! let mut opt = Optimizer::new(OptimizerConfig::default(), 512, |_| 0);
//!
//! let mut renamed = Vec::new();
//! let mut cycle = 0;
//! while let Step::Inst(d) = emu.step()? {
//!     // One instruction per bundle here; the pipeline batches up to four.
//!     renamed.extend(opt.rename_bundle(cycle, &[RenameReq { d, mispredicted: false }]));
//!     cycle += 1;
//! }
//! assert_eq!(renamed[0].class, RenamedClass::Done); // li executes early
//! assert_eq!(renamed[1].early_value, Some(42));     // 40 + 2 propagated
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod feedback;
mod mbc;
mod optimizer;
pub mod passes;
mod preg;
mod rat;
mod stats;
mod symval;

pub use config::{ConfigFieldError, ConfigScalar, OptimizerConfig};
pub use feedback::{Feedback, FeedbackQueue};
pub use mbc::{Mbc, MbcStats};
pub use optimizer::{Optimizer, RenameReq, Renamed, RenamedClass};
pub use passes::{CpRa, EarlyExec, OptPass, Pass, PassId, PassSet, RleSf, ValueFeedback};
pub use preg::{PhysReg, PregFile, SrcList, MAX_SRCS};
pub use rat::SymRat;
pub use stats::{pct, OptStats, PassStats, ENGINE_BLOCK};
pub use symval::{
    sym_add, sym_add_imm, sym_scaled_add, sym_shl, sym_sub, Folded, SymValue, MAX_SCALE,
};
