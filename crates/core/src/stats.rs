//! Optimizer statistics — the raw counters behind Table 3.

/// Event counters accumulated by the optimizer.
///
/// The derived percentages ([`OptStats::pct_executed_early`] etc.) are the
/// quantities Table 3 of the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Dynamic instructions processed by the rename/optimize stage.
    pub insts: u64,
    /// Instructions whose outputs were fully determined in the optimizer
    /// (early-executed ALU ops, resolved branches, eliminated moves, and
    /// forwarded loads) — the paper's "exec. early".
    pub executed_early: u64,
    /// Conditional-branch instances resolved in the optimizer.
    pub branches_resolved_early: u64,
    /// Mispredicted conditional branches (as reported by the pipeline).
    pub mispredicted_branches: u64,
    /// Mispredicted conditional branches that the optimizer resolved —
    /// the paper's "recov. mispred. brs.".
    pub mispredicts_recovered_early: u64,
    /// Loads + stores processed.
    pub mem_ops: u64,
    /// Loads + stores whose effective address was fully generated in the
    /// optimizer — the paper's "ld/st addr. gen.".
    pub mem_addr_generated: u64,
    /// Loads processed.
    pub loads: u64,
    /// Loads converted to moves by RLE/SF — the paper's "lds removed".
    pub loads_removed: u64,
    /// MBC forwards rejected by strict value checking (stale entries from
    /// speculative unknown-address stores).
    pub mbc_rejects: u64,
    /// Register moves eliminated through reassociation.
    pub moves_eliminated: u64,
    /// Multiplies strength-reduced to shifts.
    pub strength_reductions: u64,
    /// Register values inferred from branch directions.
    pub branch_inferences: u64,
    /// Values fed back from execution that converted a live table entry.
    pub feedback_integrations: u64,
    /// Instructions that could not be optimized due to the intra-bundle
    /// serial-addition limit.
    pub chain_limited: u64,
    /// Loads denied an MBC query due to the intra-bundle memory-chain limit.
    pub mem_chain_limited: u64,
    /// Table invalidations at discrete-optimization trace boundaries (§3.4).
    pub trace_resets: u64,
}

impl OptStats {
    fn pct(num: u64, den: u64) -> f64 {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    }

    /// Percentage of the instruction stream executed in the optimizer.
    pub fn pct_executed_early(&self) -> f64 {
        Self::pct(self.executed_early, self.insts)
    }

    /// Percentage of mispredicted branches recovered at the optimizer.
    pub fn pct_mispredicts_recovered(&self) -> f64 {
        Self::pct(self.mispredicts_recovered_early, self.mispredicted_branches)
    }

    /// Percentage of memory operations with addresses generated early.
    pub fn pct_mem_addr_generated(&self) -> f64 {
        Self::pct(self.mem_addr_generated, self.mem_ops)
    }

    /// Percentage of loads removed by RLE/SF.
    pub fn pct_loads_removed(&self) -> f64 {
        Self::pct(self.loads_removed, self.loads)
    }

    /// Accumulates another stats block into this one (used to aggregate over
    /// a benchmark suite).
    pub fn merge(&mut self, o: &OptStats) {
        self.insts += o.insts;
        self.executed_early += o.executed_early;
        self.branches_resolved_early += o.branches_resolved_early;
        self.mispredicted_branches += o.mispredicted_branches;
        self.mispredicts_recovered_early += o.mispredicts_recovered_early;
        self.mem_ops += o.mem_ops;
        self.mem_addr_generated += o.mem_addr_generated;
        self.loads += o.loads;
        self.loads_removed += o.loads_removed;
        self.mbc_rejects += o.mbc_rejects;
        self.moves_eliminated += o.moves_eliminated;
        self.strength_reductions += o.strength_reductions;
        self.branch_inferences += o.branch_inferences;
        self.feedback_integrations += o.feedback_integrations;
        self.chain_limited += o.chain_limited;
        self.mem_chain_limited += o.mem_chain_limited;
        self.trace_resets += o.trace_resets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let s = OptStats {
            insts: 200,
            executed_early: 52,
            mispredicted_branches: 40,
            mispredicts_recovered_early: 5,
            mem_ops: 100,
            mem_addr_generated: 65,
            loads: 50,
            loads_removed: 10,
            ..OptStats::default()
        };
        assert!((s.pct_executed_early() - 26.0).abs() < 1e-9);
        assert!((s.pct_mispredicts_recovered() - 12.5).abs() < 1e-9);
        assert!((s.pct_mem_addr_generated() - 65.0).abs() < 1e-9);
        assert!((s.pct_loads_removed() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_denominators_are_zero() {
        let s = OptStats::default();
        assert_eq!(s.pct_executed_early(), 0.0);
        assert_eq!(s.pct_mispredicts_recovered(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = OptStats {
            insts: 10,
            loads: 2,
            ..OptStats::default()
        };
        let b = OptStats {
            insts: 5,
            loads: 3,
            loads_removed: 1,
            ..OptStats::default()
        };
        a.merge(&b);
        assert_eq!(a.insts, 15);
        assert_eq!(a.loads, 5);
        assert_eq!(a.loads_removed, 1);
    }
}
