//! Optimizer statistics — the raw counters behind Table 3, split per pass.
//!
//! Counters are accumulated per *pass unit* ([`PassStats`]): each
//! [`crate::passes::OptPass`] charge site records into the block named
//! after it, and the Table 3 aggregate is always **derived** as the sum of
//! the blocks ([`PassStats::total`]), never maintained separately — so the
//! per-pass attribution map cannot drift from the aggregates the paper's
//! evaluation reports.

use crate::passes::PassId;

/// Shared guarded percentage: `100 * num / den`, and `0.0` (never
/// `NaN`/`inf`) when the denominator is zero. Every derived percentage in
/// the stats blocks ([`OptStats::pct_executed_early`],
/// [`crate::MbcStats::pct_hits`], …) goes through this one function so
/// zero-denominator handling cannot diverge between them.
pub fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Event counters accumulated by the optimizer.
///
/// The derived percentages ([`OptStats::pct_executed_early`] etc.) are the
/// quantities Table 3 of the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Dynamic instructions processed by the rename/optimize stage.
    pub insts: u64,
    /// Instructions whose outputs were fully determined in the optimizer
    /// (early-executed ALU ops, resolved branches, eliminated moves, and
    /// forwarded loads) — the paper's "exec. early".
    pub executed_early: u64,
    /// Conditional-branch instances resolved in the optimizer.
    pub branches_resolved_early: u64,
    /// Mispredicted conditional branches (as reported by the pipeline).
    pub mispredicted_branches: u64,
    /// Mispredicted conditional branches that the optimizer resolved —
    /// the paper's "recov. mispred. brs.".
    pub mispredicts_recovered_early: u64,
    /// Loads + stores processed.
    pub mem_ops: u64,
    /// Loads + stores whose effective address was fully generated in the
    /// optimizer — the paper's "ld/st addr. gen.".
    pub mem_addr_generated: u64,
    /// Loads processed.
    pub loads: u64,
    /// Loads converted to moves by RLE/SF — the paper's "lds removed".
    pub loads_removed: u64,
    /// MBC forwards rejected by strict value checking (stale entries from
    /// speculative unknown-address stores).
    pub mbc_rejects: u64,
    /// Register moves eliminated through reassociation.
    pub moves_eliminated: u64,
    /// Multiplies strength-reduced to shifts.
    pub strength_reductions: u64,
    /// Register values inferred from branch directions.
    pub branch_inferences: u64,
    /// Values fed back from execution that converted a live table entry.
    pub feedback_integrations: u64,
    /// Instructions that could not be optimized due to the intra-bundle
    /// serial-addition limit.
    pub chain_limited: u64,
    /// Loads denied an MBC query due to the intra-bundle memory-chain limit.
    pub mem_chain_limited: u64,
    /// Table invalidations at discrete-optimization trace boundaries (§3.4).
    pub trace_resets: u64,
}

impl OptStats {
    /// Percentage of the instruction stream executed in the optimizer.
    pub fn pct_executed_early(&self) -> f64 {
        pct(self.executed_early, self.insts)
    }

    /// Percentage of mispredicted branches recovered at the optimizer.
    pub fn pct_mispredicts_recovered(&self) -> f64 {
        pct(self.mispredicts_recovered_early, self.mispredicted_branches)
    }

    /// Percentage of memory operations with addresses generated early.
    pub fn pct_mem_addr_generated(&self) -> f64 {
        pct(self.mem_addr_generated, self.mem_ops)
    }

    /// Percentage of loads removed by RLE/SF.
    pub fn pct_loads_removed(&self) -> f64 {
        pct(self.loads_removed, self.loads)
    }

    /// Accumulates another stats block into this one (used to aggregate over
    /// a benchmark suite).
    pub fn merge(&mut self, o: &OptStats) {
        self.insts += o.insts;
        self.executed_early += o.executed_early;
        self.branches_resolved_early += o.branches_resolved_early;
        self.mispredicted_branches += o.mispredicted_branches;
        self.mispredicts_recovered_early += o.mispredicts_recovered_early;
        self.mem_ops += o.mem_ops;
        self.mem_addr_generated += o.mem_addr_generated;
        self.loads += o.loads;
        self.loads_removed += o.loads_removed;
        self.mbc_rejects += o.mbc_rejects;
        self.moves_eliminated += o.moves_eliminated;
        self.strength_reductions += o.strength_reductions;
        self.branch_inferences += o.branch_inferences;
        self.feedback_integrations += o.feedback_integrations;
        self.chain_limited += o.chain_limited;
        self.mem_chain_limited += o.mem_chain_limited;
        self.trace_resets += o.trace_resets;
    }
}

/// The optimizer counters attributed to the pass unit that earned them.
///
/// Each [`crate::passes::OptPass`] charge site records into the block
/// named after it ([`PassId::name`]); counters that no single pass owns —
/// the stream denominators and the engine-level structural limits — land
/// in [`engine`](Self::engine). The aggregate [`OptStats`] is always
/// *derived* as the elementwise sum of the five blocks
/// ([`total`](Self::total)) and never maintained separately, so per-pass
/// and aggregate numbers cannot drift apart.
///
/// The attribution convention, per counter:
///
/// | Block | Counters |
/// |-------|----------|
/// | `engine` | `insts`, `mispredicted_branches`, `mem_ops`, `loads`, `mem_addr_generated` (address knowledge may come from any pass), `chain_limited`, `trace_resets` |
/// | `cp-ra` | `moves_eliminated`, `strength_reductions`, `branch_inferences` |
/// | `rle-sf` | `loads_removed`, `mbc_rejects`, `mem_chain_limited` |
/// | `value-feedback` | `feedback_integrations` |
/// | `early-exec` | `executed_early`, `branches_resolved_early`, `mispredicts_recovered_early` |
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Counters attributable to no single pass: stream denominators and
    /// engine-level structural limits (§6.2 chain budgets, §3.4 trace
    /// resets, address generation).
    pub engine: OptStats,
    /// Constant propagation / reassociation (§3, §3.1).
    pub cp_ra: OptStats,
    /// Redundant load elimination / store forwarding (§3.2).
    pub rle_sf: OptStats,
    /// Value feedback (§4).
    pub value_feedback: OptStats,
    /// Early execution / early branch resolution (§3.3).
    pub early_exec: OptStats,
}

/// Name of the [`PassStats::engine`] block in name-keyed listings (the
/// four pass blocks use [`PassId::name`]).
pub const ENGINE_BLOCK: &str = "engine";

impl PassStats {
    /// The block owned by a stock pass unit.
    pub fn block(&self, id: PassId) -> &OptStats {
        match id {
            PassId::CpRa => &self.cp_ra,
            PassId::RleSf => &self.rle_sf,
            PassId::ValueFeedback => &self.value_feedback,
            PassId::EarlyExec => &self.early_exec,
        }
    }

    /// Mutable access to a stock pass unit's block.
    pub fn block_mut(&mut self, id: PassId) -> &mut OptStats {
        match id {
            PassId::CpRa => &mut self.cp_ra,
            PassId::RleSf => &mut self.rle_sf,
            PassId::ValueFeedback => &mut self.value_feedback,
            PassId::EarlyExec => &mut self.early_exec,
        }
    }

    /// Every block with its stable name, engine first then the pass units
    /// in pipeline order. This is the one key ordering every name-keyed
    /// export (`Report::to_json`'s `"passes"` object, table rendering)
    /// derives from.
    pub fn named_blocks(&self) -> [(&'static str, &OptStats); 5] {
        [
            (ENGINE_BLOCK, &self.engine),
            (PassId::CpRa.name(), &self.cp_ra),
            (PassId::RleSf.name(), &self.rle_sf),
            (PassId::ValueFeedback.name(), &self.value_feedback),
            (PassId::EarlyExec.name(), &self.early_exec),
        ]
    }

    /// The aggregate Table 3 counters: the elementwise sum of all five
    /// blocks. This is the *only* way the aggregate exists.
    pub fn total(&self) -> OptStats {
        let mut out = OptStats::default();
        for (_, block) in self.named_blocks() {
            out.merge(block);
        }
        out
    }

    /// Accumulates another attribution map into this one, block by block
    /// (used to aggregate over a benchmark suite).
    pub fn merge(&mut self, o: &PassStats) {
        self.engine.merge(&o.engine);
        self.cp_ra.merge(&o.cp_ra);
        self.rle_sf.merge(&o.rle_sf);
        self.value_feedback.merge(&o.value_feedback);
        self.early_exec.merge(&o.early_exec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let s = OptStats {
            insts: 200,
            executed_early: 52,
            mispredicted_branches: 40,
            mispredicts_recovered_early: 5,
            mem_ops: 100,
            mem_addr_generated: 65,
            loads: 50,
            loads_removed: 10,
            ..OptStats::default()
        };
        assert!((s.pct_executed_early() - 26.0).abs() < 1e-9);
        assert!((s.pct_mispredicts_recovered() - 12.5).abs() < 1e-9);
        assert!((s.pct_mem_addr_generated() - 65.0).abs() < 1e-9);
        assert!((s.pct_loads_removed() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_denominators_are_zero() {
        let s = OptStats::default();
        assert_eq!(s.pct_executed_early(), 0.0);
        assert_eq!(s.pct_mispredicts_recovered(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = OptStats {
            insts: 10,
            loads: 2,
            ..OptStats::default()
        };
        let b = OptStats {
            insts: 5,
            loads: 3,
            loads_removed: 1,
            ..OptStats::default()
        };
        a.merge(&b);
        assert_eq!(a.insts, 15);
        assert_eq!(a.loads, 5);
        assert_eq!(a.loads_removed, 1);
    }

    #[test]
    fn pct_guards_zero_denominators() {
        assert_eq!(pct(5, 0), 0.0);
        assert!((pct(1, 8) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn total_is_the_elementwise_block_sum() {
        let mut p = PassStats::default();
        p.engine.insts = 100;
        p.engine.loads = 10;
        p.cp_ra.moves_eliminated = 3;
        p.rle_sf.loads_removed = 4;
        p.value_feedback.feedback_integrations = 5;
        p.early_exec.executed_early = 6;
        let t = p.total();
        assert_eq!(t.insts, 100);
        assert_eq!(t.loads, 10);
        assert_eq!(t.moves_eliminated, 3);
        assert_eq!(t.loads_removed, 4);
        assert_eq!(t.feedback_integrations, 5);
        assert_eq!(t.executed_early, 6);
    }

    #[test]
    fn named_blocks_use_pass_names_in_pipeline_order() {
        let p = PassStats::default();
        let names: Vec<&str> = p.named_blocks().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["engine", "cp-ra", "rle-sf", "value-feedback", "early-exec"]
        );
        assert_eq!(p.block(PassId::RleSf), &OptStats::default());
    }

    #[test]
    fn pass_stats_merge_is_blockwise() {
        let mut a = PassStats::default();
        a.cp_ra.moves_eliminated = 1;
        let mut b = PassStats::default();
        b.cp_ra.moves_eliminated = 2;
        b.early_exec.executed_early = 7;
        a.merge(&b);
        assert_eq!(a.cp_ra.moves_eliminated, 3);
        assert_eq!(a.early_exec.executed_early, 7);
        assert_eq!(a.total().executed_early, 7);
    }
}
