//! The symbolic value algebra of the CP/RA tables.
//!
//! Every integer architectural register's RAT entry carries a symbolic value
//! of the form `(base << scale) + offset`, where `base` is a physical
//! register, `scale` a 2-bit shift, and `offset` a 64-bit signed immediate
//! (§3.1 of the paper). A fully *known* value is encoded by setting the base
//! to the hardwired zero register and storing the value in the offset — the
//! paper's "base register value" field.
//!
//! Transformations additionally report whether they consumed one of the
//! rename-stage ALUs ([`Folded::used_add`]); the bundle logic uses this to
//! enforce the paper's bound on serial additions per rename packet (§3.1,
//! §6.2).

use crate::preg::PhysReg;
use std::fmt;

/// Maximum encodable scale (a 2-bit field: shifts of 0–3).
pub const MAX_SCALE: u8 = 3;

/// A symbolic register value: either a known 64-bit constant or
/// `(base << scale) + offset` over a physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymValue {
    /// The value is fully known.
    Known(u64),
    /// `(base << scale) + offset`.
    Expr {
        /// Base physical register.
        base: PhysReg,
        /// Left-shift applied to the base (0–3).
        scale: u8,
        /// Signed offset added after shifting.
        offset: i64,
    },
}

impl SymValue {
    /// A plain reference to a physical register (scale 0, offset 0).
    #[inline]
    pub fn reg(p: PhysReg) -> SymValue {
        SymValue::Expr {
            base: p,
            scale: 0,
            offset: 0,
        }
    }

    /// The known constant, if fully known.
    #[inline]
    pub fn known(&self) -> Option<u64> {
        match *self {
            SymValue::Known(v) => Some(v),
            SymValue::Expr { .. } => None,
        }
    }

    /// The base physical register, if symbolic.
    #[inline]
    pub fn base(&self) -> Option<PhysReg> {
        match *self {
            SymValue::Known(_) => None,
            SymValue::Expr { base, .. } => Some(base),
        }
    }

    /// Whether this is a *plain* register reference (`scale == 0 &&
    /// offset == 0`) — the form that permits move elimination.
    #[inline]
    pub fn is_plain_reg(&self) -> bool {
        matches!(
            *self,
            SymValue::Expr {
                scale: 0,
                offset: 0,
                ..
            }
        )
    }

    /// Substitutes a now-known value for the base register (value feedback):
    /// `(v << scale) + offset`.
    ///
    /// Returns `None` if this symbol does not reference `p`.
    pub fn feed_back(&self, p: PhysReg, v: u64) -> Option<SymValue> {
        match *self {
            SymValue::Expr {
                base,
                scale,
                offset,
            } if base == p => Some(SymValue::Known((v << scale).wrapping_add(offset as u64))),
            _ => None,
        }
    }

    /// Evaluates the symbol given an oracle for physical-register values
    /// (used only for strict value checking, never for optimization).
    pub fn eval_with(&self, lookup: impl Fn(PhysReg) -> u64) -> u64 {
        match *self {
            SymValue::Known(v) => v,
            SymValue::Expr {
                base,
                scale,
                offset,
            } => (lookup(base) << scale).wrapping_add(offset as u64),
        }
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SymValue::Known(v) => write!(f, "={v:#x}"),
            SymValue::Expr {
                base,
                scale,
                offset,
            } => {
                if scale == 0 && offset == 0 {
                    write!(f, "{base}")
                } else if scale == 0 {
                    write!(f, "{base}{offset:+}")
                } else {
                    write!(f, "({base}<<{scale}){offset:+}")
                }
            }
        }
    }
}

/// Result of a symbolic transformation: the derived value plus whether one
/// rename-stage ALU addition was consumed to derive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Folded {
    /// The derived symbolic value.
    pub value: SymValue,
    /// Whether deriving it required an ALU addition this cycle. Trivial
    /// recodings (e.g. folding an immediate into a zero offset, or bumping
    /// the 2-bit scale) are free.
    pub used_add: bool,
}

impl Folded {
    fn add(value: SymValue) -> Folded {
        Folded {
            value,
            used_add: true,
        }
    }
}

/// Adds a signed immediate to a symbolic value (constant propagation /
/// reassociation for `lda`, `addq rI, #k`, `subq rI, #k`).
///
/// Always representable. Costs an addition unless the existing offset is
/// zero (the immediate then just occupies the empty offset field).
///
/// # Examples
///
/// ```
/// use contopt::{sym_add_imm, SymValue, PhysReg};
/// let p = PhysReg::from_index(5);
/// let f = sym_add_imm(SymValue::reg(p), 8);
/// assert_eq!(f.value, SymValue::Expr { base: p, scale: 0, offset: 8 });
/// assert!(!f.used_add, "filling an empty offset is free");
/// let g = sym_add_imm(f.value, -3);
/// assert_eq!(g.value, SymValue::Expr { base: p, scale: 0, offset: 5 });
/// assert!(g.used_add, "folding into a non-zero offset costs an add");
/// ```
pub fn sym_add_imm(a: SymValue, k: i64) -> Folded {
    match a {
        SymValue::Known(v) => Folded {
            value: SymValue::Known(v.wrapping_add(k as u64)),
            used_add: k != 0,
        },
        SymValue::Expr {
            base,
            scale,
            offset,
        } => {
            let value = SymValue::Expr {
                base,
                scale,
                offset: offset.wrapping_add(k),
            };
            Folded {
                value,
                used_add: offset != 0 && k != 0,
            }
        }
    }
}

/// Adds two symbolic values (`addq rA, rB`): representable when at least one
/// side is known.
pub fn sym_add(a: SymValue, b: SymValue) -> Option<Folded> {
    match (a, b) {
        (SymValue::Known(x), SymValue::Known(y)) => {
            Some(Folded::add(SymValue::Known(x.wrapping_add(y))))
        }
        (SymValue::Known(k), e @ SymValue::Expr { .. })
        | (e @ SymValue::Expr { .. }, SymValue::Known(k)) => Some(sym_add_imm(e, k as i64)),
        (SymValue::Expr { .. }, SymValue::Expr { .. }) => None,
    }
}

/// Subtracts symbolic values (`subq rA, rB`): representable when the
/// subtrahend is known, or both are known. `Known - Expr` is *not*
/// representable (the encoding cannot negate a base register).
pub fn sym_sub(a: SymValue, b: SymValue) -> Option<Folded> {
    match (a, b) {
        (SymValue::Known(x), SymValue::Known(y)) => {
            Some(Folded::add(SymValue::Known(x.wrapping_sub(y))))
        }
        (e @ SymValue::Expr { .. }, SymValue::Known(k)) => {
            Some(sym_add_imm(e, (k as i64).wrapping_neg()))
        }
        _ => None,
    }
}

/// Shifts a symbolic value left (`sll rA, #k`, and the strength-reduced form
/// of `mulq rA, #2^k`): representable while the accumulated scale fits the
/// 2-bit field.
///
/// Folding the scale is free; shifting a non-zero offset costs an add-class
/// ALU slot (it reuses the shifter).
pub fn sym_shl(a: SymValue, k: u32) -> Option<Folded> {
    match a {
        SymValue::Known(v) => Some(Folded::add(SymValue::Known(v.wrapping_shl(k)))),
        SymValue::Expr {
            base,
            scale,
            offset,
        } => {
            let new_scale = scale as u32 + k;
            if new_scale > MAX_SCALE as u32 {
                return None;
            }
            let new_offset = offset.checked_shl(k)?;
            // Guard against offset overflow changing the value.
            if (new_offset >> k) != offset {
                return None;
            }
            Some(Folded {
                value: SymValue::Expr {
                    base,
                    scale: new_scale as u8,
                    offset: new_offset,
                },
                used_add: offset != 0,
            })
        }
    }
}

/// The scaled-add forms `s4addq`/`s8addq`: `(a << k) + b` with `k ∈ {2,3}`.
pub fn sym_scaled_add(a: SymValue, k: u32, b: SymValue) -> Option<Folded> {
    let shifted = sym_shl(a, k)?;
    let sum = sym_add(shifted.value, b)?;
    Some(Folded {
        value: sum.value,
        used_add: shifted.used_add || sum.used_add,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> PhysReg {
        PhysReg::from_index(i)
    }

    #[test]
    fn known_encoding_via_zero_base() {
        // The hardware encodes Known(v) as base = zero register; the enum
        // models that directly. Feeding back the zero register never occurs.
        let k = SymValue::Known(7);
        assert_eq!(k.known(), Some(7));
        assert_eq!(k.base(), None);
        assert!(!k.is_plain_reg());
    }

    #[test]
    fn add_imm_chains() {
        let s = SymValue::reg(p(3));
        let s1 = sym_add_imm(s, 4);
        assert!(!s1.used_add);
        let s2 = sym_add_imm(s1.value, 4);
        assert!(s2.used_add);
        assert_eq!(
            s2.value,
            SymValue::Expr {
                base: p(3),
                scale: 0,
                offset: 8
            }
        );
    }

    #[test]
    fn add_sub_with_known() {
        let e = SymValue::Expr {
            base: p(1),
            scale: 0,
            offset: 10,
        };
        let sum = sym_add(e, SymValue::Known(5)).unwrap();
        assert_eq!(
            sum.value,
            SymValue::Expr {
                base: p(1),
                scale: 0,
                offset: 15
            }
        );
        let diff = sym_sub(e, SymValue::Known(5)).unwrap();
        assert_eq!(
            diff.value,
            SymValue::Expr {
                base: p(1),
                scale: 0,
                offset: 5
            }
        );
        assert!(
            sym_sub(SymValue::Known(5), e).is_none(),
            "cannot negate a base"
        );
        assert!(
            sym_add(e, e).is_none(),
            "two symbolic bases not representable"
        );
    }

    #[test]
    fn both_known_executes() {
        assert_eq!(
            sym_add(SymValue::Known(3), SymValue::Known(4))
                .unwrap()
                .value,
            SymValue::Known(7)
        );
        assert_eq!(
            sym_sub(SymValue::Known(3), SymValue::Known(4))
                .unwrap()
                .value,
            SymValue::Known(u64::MAX)
        );
    }

    #[test]
    fn scale_field_limits_shifts() {
        let s = SymValue::reg(p(2));
        let s2 = sym_shl(s, 2).unwrap();
        assert_eq!(
            s2.value,
            SymValue::Expr {
                base: p(2),
                scale: 2,
                offset: 0
            }
        );
        assert!(!s2.used_add, "scale bump is free");
        let s3 = sym_shl(s2.value, 1).unwrap();
        assert_eq!(s3.value.base(), Some(p(2)));
        assert!(sym_shl(s3.value, 1).is_none(), "scale > 3 not encodable");
    }

    #[test]
    fn shift_scales_offset() {
        let e = SymValue::Expr {
            base: p(2),
            scale: 0,
            offset: 5,
        };
        let s = sym_shl(e, 3).unwrap();
        assert_eq!(
            s.value,
            SymValue::Expr {
                base: p(2),
                scale: 3,
                offset: 40
            }
        );
        assert!(s.used_add);
    }

    #[test]
    fn scaled_add_matches_s4addq() {
        // (p << 2) + 100
        let f = sym_scaled_add(SymValue::reg(p(4)), 2, SymValue::Known(100)).unwrap();
        assert_eq!(
            f.value,
            SymValue::Expr {
                base: p(4),
                scale: 2,
                offset: 100
            }
        );
    }

    #[test]
    fn feedback_folds_scale_and_offset() {
        let e = SymValue::Expr {
            base: p(9),
            scale: 1,
            offset: -2,
        };
        assert_eq!(e.feed_back(p(9), 10), Some(SymValue::Known(18)));
        assert_eq!(e.feed_back(p(8), 10), None);
        assert_eq!(SymValue::Known(3).feed_back(p(9), 10), None);
    }

    #[test]
    fn eval_with_oracle() {
        let e = SymValue::Expr {
            base: p(9),
            scale: 2,
            offset: 1,
        };
        assert_eq!(e.eval_with(|_| 5), 21);
        assert_eq!(SymValue::Known(7).eval_with(|_| unreachable!()), 7);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SymValue::Known(255).to_string(), "=0xff");
        assert_eq!(SymValue::reg(p(3)).to_string(), "p3");
        assert_eq!(
            SymValue::Expr {
                base: p(3),
                scale: 0,
                offset: -4
            }
            .to_string(),
            "p3-4"
        );
        assert_eq!(
            SymValue::Expr {
                base: p(3),
                scale: 2,
                offset: 4
            }
            .to_string(),
            "(p3<<2)+4"
        );
    }
}
