//! The pluggable optimization-pass layer.
//!
//! The continuous optimizer of *Continuous Optimization* (ISCA 2005) is
//! not one monolithic transformation but a small set of cooperating table
//! updates applied to every renamed instruction. This module exposes each
//! of them as a **pass unit** implementing [`OptPass`], registered on a
//! [`PassSet`] and compiled down to the [`OptimizerConfig`] the rename
//! engine executes:
//!
//! | Pass unit        | Paper section | What it contributes |
//! |------------------|---------------|---------------------|
//! | [`CpRa`]         | §3, §3.1      | Constant propagation and reassociation: RAT entries carry `(base << scale) ± offset` symbols folded through adds, shifts, and scaled adds, bounded by the serial-addition budget |
//! | [`RleSf`]        | §3.2          | Redundant load elimination and store forwarding through the Memory Bypass Cache |
//! | [`ValueFeedback`]| §4, §4.2      | Execution results CAM-convert symbolic table entries into known constants after a transmission delay |
//! | [`EarlyExec`]    | §3.3          | Fully-known instructions execute on the rename-stage ALUs and fully-known branches resolve there |
//!
//! The engine-level split of the same code lives in the sibling modules:
//! [`cp_ra`](self::cp_ra) (ALU/`lda` folding), [`rle_sf`](self::rle_sf)
//! (loads/stores and MBC forwarding), [`early_exec`](self::early_exec)
//! (branch/call resolution), and [`feedback`](self::feedback) (result
//! integration).
//!
//! # Ablations as pass lists
//!
//! The paper's evaluation scenarios are pass lists, not bespoke presets:
//!
//! ```
//! use contopt::passes::{Pass, PassSet};
//! use contopt::OptimizerConfig;
//!
//! // Figure 9's "value feedback alone":
//! let feedback_only: PassSet = [Pass::value_feedback(), Pass::early_exec()]
//!     .into_iter()
//!     .collect();
//! assert_eq!(
//!     OptimizerConfig::from(&feedback_only),
//!     OptimizerConfig::feedback_only().normalized(),
//! );
//!
//! // CP/RA alone (no memory bypassing, no feedback):
//! let cp_ra_only: PassSet = [Pass::cp_ra(), Pass::early_exec()].into_iter().collect();
//! assert!(OptimizerConfig::from(&cp_ra_only).optimize);
//! assert!(!OptimizerConfig::from(&cp_ra_only).enable_rle_sf);
//! ```
//!
//! `OptimizerConfig` remains the flat, copyable serialized form; the
//! [`From`] bridges in both directions keep existing call sites working.

pub(crate) mod cp_ra;
pub(crate) mod early_exec;
pub(crate) mod feedback;
pub(crate) mod rle_sf;

use crate::config::OptimizerConfig;
use std::fmt;

/// Identity of a stock pass unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassId {
    /// Constant propagation / reassociation (§3).
    CpRa,
    /// Redundant load elimination / store forwarding (§3.2).
    RleSf,
    /// Value feedback (§4).
    ValueFeedback,
    /// Early execution and early branch resolution (§3.3).
    EarlyExec,
}

impl PassId {
    /// Every stock pass unit, in pipeline (and report) order.
    pub const ALL: [PassId; 4] = [
        PassId::CpRa,
        PassId::RleSf,
        PassId::ValueFeedback,
        PassId::EarlyExec,
    ];

    /// Looks a stock pass up by its [`name`](Self::name) (`"cp-ra"`,
    /// `"rle-sf"`, `"value-feedback"`, `"early-exec"`).
    pub fn from_name(name: &str) -> Option<PassId> {
        PassId::ALL.into_iter().find(|id| id.name() == name)
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PassId::CpRa => "cp-ra",
            PassId::RleSf => "rle-sf",
            PassId::ValueFeedback => "value-feedback",
            PassId::EarlyExec => "early-exec",
        }
    }

    /// The section of the paper the pass implements.
    pub fn paper_section(self) -> &'static str {
        match self {
            PassId::CpRa => "§3/§3.1",
            PassId::RleSf => "§3.2",
            PassId::ValueFeedback => "§4",
            PassId::EarlyExec => "§3.3",
        }
    }
}

/// One pluggable rename-stage optimization pass.
///
/// A pass contributes its feature switches and parameters to the effective
/// [`OptimizerConfig`] via [`configure`](OptPass::configure); the rename
/// engine then executes the union of the registered passes. Implement this
/// trait to plug a custom tuning pass (e.g. one that resizes the MBC or
/// caps chain depths) into `PassSet::with` without touching the engine.
pub trait OptPass: fmt::Debug {
    /// Short machine-readable name (used in reports and pass listings).
    fn name(&self) -> &'static str;

    /// The paper section this pass reproduces, for documentation.
    fn paper_section(&self) -> &'static str {
        "-"
    }

    /// Folds this pass's switches and parameters into `cfg`.
    fn configure(&self, cfg: &mut OptimizerConfig);

    /// The stock identity, if this is one of the paper's four pass units.
    fn id(&self) -> Option<PassId> {
        None
    }
}

/// Constant propagation / reassociation (paper §3, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpRa {
    /// Derive `(base << scale) ± offset` expressions (reassociation). With
    /// this off only fully-known constants propagate.
    pub reassociate: bool,
    /// Infer register values from branch directions (`bne` not taken ⇒ 0).
    pub branch_inference: bool,
    /// Chained dependent additions permitted within one rename bundle
    /// beyond each instruction's own (Figure 10 sweeps 0/1/3).
    pub add_chain_depth: u32,
}

impl Default for CpRa {
    fn default() -> CpRa {
        CpRa {
            reassociate: true,
            branch_inference: true,
            add_chain_depth: 0,
        }
    }
}

impl OptPass for CpRa {
    fn name(&self) -> &'static str {
        PassId::CpRa.name()
    }

    fn paper_section(&self) -> &'static str {
        PassId::CpRa.paper_section()
    }

    fn configure(&self, cfg: &mut OptimizerConfig) {
        cfg.optimize = true;
        cfg.enable_reassociation = self.reassociate;
        cfg.enable_branch_inference = self.branch_inference;
        cfg.add_chain_depth = if self.reassociate {
            self.add_chain_depth
        } else {
            0
        };
    }

    fn id(&self) -> Option<PassId> {
        Some(PassId::CpRa)
    }
}

/// Redundant load elimination / store forwarding (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RleSf {
    /// Memory Bypass Cache entries (Table 2: 128).
    pub entries: usize,
    /// Flush the MBC on unknown-address stores instead of speculating.
    pub flush_on_unknown_store: bool,
    /// Chained dependent memory operations permitted within one rename
    /// bundle (Figure 10's "& 1 mem" variant).
    pub mem_chain_depth: u32,
}

impl Default for RleSf {
    fn default() -> RleSf {
        RleSf {
            entries: 128,
            flush_on_unknown_store: false,
            mem_chain_depth: 0,
        }
    }
}

impl OptPass for RleSf {
    fn name(&self) -> &'static str {
        PassId::RleSf.name()
    }

    fn paper_section(&self) -> &'static str {
        PassId::RleSf.paper_section()
    }

    fn configure(&self, cfg: &mut OptimizerConfig) {
        cfg.optimize = true;
        cfg.enable_rle_sf = true;
        cfg.mbc_entries = self.entries;
        cfg.flush_mbc_on_unknown_store = self.flush_on_unknown_store;
        cfg.mem_chain_depth = self.mem_chain_depth;
    }

    fn id(&self) -> Option<PassId> {
        Some(PassId::RleSf)
    }
}

/// Value feedback (paper §4): execution results return to the tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueFeedback {
    /// Transmission delay in cycles (Figure 12 sweeps 0/1/5/10).
    pub delay: u64,
}

impl Default for ValueFeedback {
    fn default() -> ValueFeedback {
        ValueFeedback { delay: 1 }
    }
}

impl OptPass for ValueFeedback {
    fn name(&self) -> &'static str {
        PassId::ValueFeedback.name()
    }

    fn paper_section(&self) -> &'static str {
        PassId::ValueFeedback.paper_section()
    }

    fn configure(&self, cfg: &mut OptimizerConfig) {
        cfg.value_feedback = true;
        cfg.feedback_delay = self.delay;
    }

    fn id(&self) -> Option<PassId> {
        Some(PassId::ValueFeedback)
    }
}

/// Early execution / early branch resolution (paper §3.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarlyExec;

impl OptPass for EarlyExec {
    fn name(&self) -> &'static str {
        PassId::EarlyExec.name()
    }

    fn paper_section(&self) -> &'static str {
        PassId::EarlyExec.paper_section()
    }

    fn configure(&self, cfg: &mut OptimizerConfig) {
        cfg.enable_early_exec = true;
    }

    fn id(&self) -> Option<PassId> {
        Some(PassId::EarlyExec)
    }
}

/// One stock pass unit, as a copyable value (so pass lists can be written
/// as plain arrays: `[Pass::cp_ra(), Pass::rle_sf()]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pass {
    /// Constant propagation / reassociation.
    CpRa(CpRa),
    /// Redundant load elimination / store forwarding.
    RleSf(RleSf),
    /// Value feedback.
    ValueFeedback(ValueFeedback),
    /// Early execution.
    EarlyExec(EarlyExec),
}

impl Pass {
    /// Default-parameter CP/RA pass.
    pub fn cp_ra() -> Pass {
        Pass::CpRa(CpRa::default())
    }

    /// Default-parameter RLE/SF pass.
    pub fn rle_sf() -> Pass {
        Pass::RleSf(RleSf::default())
    }

    /// Default-parameter value-feedback pass.
    pub fn value_feedback() -> Pass {
        Pass::ValueFeedback(ValueFeedback::default())
    }

    /// The early-execution pass.
    pub fn early_exec() -> Pass {
        Pass::EarlyExec(EarlyExec)
    }

    fn as_dyn(&self) -> &dyn OptPass {
        match self {
            Pass::CpRa(p) => p,
            Pass::RleSf(p) => p,
            Pass::ValueFeedback(p) => p,
            Pass::EarlyExec(p) => p,
        }
    }
}

impl OptPass for Pass {
    fn name(&self) -> &'static str {
        self.as_dyn().name()
    }

    fn paper_section(&self) -> &'static str {
        self.as_dyn().paper_section()
    }

    fn configure(&self, cfg: &mut OptimizerConfig) {
        self.as_dyn().configure(cfg)
    }

    fn id(&self) -> Option<PassId> {
        self.as_dyn().id()
    }
}

impl From<CpRa> for Pass {
    fn from(p: CpRa) -> Pass {
        Pass::CpRa(p)
    }
}

impl From<RleSf> for Pass {
    fn from(p: RleSf) -> Pass {
        Pass::RleSf(p)
    }
}

impl From<ValueFeedback> for Pass {
    fn from(p: ValueFeedback) -> Pass {
        Pass::ValueFeedback(p)
    }
}

impl From<EarlyExec> for Pass {
    fn from(p: EarlyExec) -> Pass {
        Pass::EarlyExec(p)
    }
}

/// An ordered collection of optimization passes plus the engine-level
/// pipeline parameters, together fully describing one rename/optimize
/// unit. An empty set is the baseline machine (a plain renamer paying no
/// extra pipeline stages).
#[derive(Debug, Default)]
pub struct PassSet {
    passes: Vec<Box<dyn OptPass>>,
    /// Extra rename pipeline stages the optimizer costs (Figure 11).
    /// `None` means the paper default (2) when any pass is registered.
    extra_stages: Option<u64>,
    /// Discrete (trace-at-a-time) table-invalidation interval (§3.4);
    /// zero is continuous optimization.
    discrete_interval: u64,
}

impl PassSet {
    /// An empty pass set (the baseline machine).
    pub fn new() -> PassSet {
        PassSet::default()
    }

    /// Adds a pass, builder-style.
    pub fn with(mut self, pass: impl OptPass + 'static) -> PassSet {
        self.push(pass);
        self
    }

    /// Adds a pass.
    pub fn push(&mut self, pass: impl OptPass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// Overrides the optimizer's extra rename pipeline stages (Figure 11).
    pub fn extra_stages(mut self, stages: u64) -> PassSet {
        self.extra_stages = Some(stages);
        self
    }

    /// Sets the discrete-optimization trace length (§3.4); zero means
    /// continuous.
    pub fn discrete(mut self, interval: u64) -> PassSet {
        self.discrete_interval = interval;
        self
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether no passes are registered (the baseline machine).
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Iterates over the registered passes.
    pub fn iter(&self) -> impl Iterator<Item = &dyn OptPass> {
        self.passes.iter().map(|p| p.as_ref())
    }

    /// Whether a stock pass unit is registered.
    pub fn contains(&self, id: PassId) -> bool {
        self.passes.iter().any(|p| p.id() == Some(id))
    }

    /// Decomposes `cfg` into its stock pass units and keeps only those
    /// `keep` accepts, preserving each kept pass's parameters and the
    /// engine-level `extra_stages`/`discrete_interval`. This is the subset
    /// constructor behind counterfactual ablations: compiling the result
    /// ([`to_config`](Self::to_config)) yields the leave-out / keep-only
    /// machine for any stock-pass combination. Keeping no pass compiles to
    /// the baseline (a plain renamer paying no extra stages) — the empty
    /// set has no cost-only representation.
    pub fn subset(cfg: OptimizerConfig, keep: impl Fn(PassId) -> bool) -> PassSet {
        let mut set = PassSet::from(cfg);
        set.passes.retain(|p| p.id().is_some_and(&keep));
        set
    }

    /// Compiles the pass set into the flat configuration the rename engine
    /// executes. An empty set yields the (normalized) baseline.
    pub fn to_config(&self) -> OptimizerConfig {
        // Start from everything-off and let each pass switch on its piece.
        let mut cfg = OptimizerConfig::baseline().normalized();
        if self.passes.is_empty() {
            return cfg;
        }
        cfg.enabled = true;
        cfg.extra_stages = self.extra_stages.unwrap_or(2);
        cfg.discrete_interval = self.discrete_interval;
        for p in &self.passes {
            p.configure(&mut cfg);
        }
        cfg.normalized()
    }
}

impl FromIterator<Pass> for PassSet {
    fn from_iter<I: IntoIterator<Item = Pass>>(iter: I) -> PassSet {
        let mut set = PassSet::new();
        for p in iter {
            set.push(p);
        }
        set
    }
}

impl From<Pass> for PassSet {
    fn from(p: Pass) -> PassSet {
        PassSet::new().with(p)
    }
}

/// Decomposes a flat configuration into its pass units (the inverse
/// serialization bridge). Lossless up to [`OptimizerConfig::normalized`]
/// for the baseline and for every configuration with at least one active
/// feature; a degenerate cost-only optimizer (enabled, featureless,
/// `extra_stages > 0`) has no pass-list form and maps to the empty set.
impl From<OptimizerConfig> for PassSet {
    fn from(cfg: OptimizerConfig) -> PassSet {
        let c = cfg.normalized();
        let mut set = PassSet::new();
        if !c.enabled {
            return set;
        }
        set.extra_stages = Some(c.extra_stages);
        set.discrete_interval = c.discrete_interval;
        if c.optimize && (c.enable_reassociation || c.enable_branch_inference || !c.enable_rle_sf) {
            set.push(CpRa {
                reassociate: c.enable_reassociation,
                branch_inference: c.enable_branch_inference,
                add_chain_depth: c.add_chain_depth,
            });
        }
        if c.enable_rle_sf {
            set.push(RleSf {
                entries: c.mbc_entries,
                flush_on_unknown_store: c.flush_mbc_on_unknown_store,
                mem_chain_depth: c.mem_chain_depth,
            });
        }
        if c.value_feedback {
            set.push(ValueFeedback {
                delay: c.feedback_delay,
            });
        }
        if c.enable_early_exec {
            set.push(EarlyExec);
        }
        set
    }
}

impl From<&PassSet> for OptimizerConfig {
    fn from(set: &PassSet) -> OptimizerConfig {
        set.to_config()
    }
}

impl From<PassSet> for OptimizerConfig {
    fn from(set: PassSet) -> OptimizerConfig {
        set.to_config()
    }
}

/// Stock-pass subset views of a flat configuration, built on
/// [`PassSet::subset`]. These are the counterfactual constructors the
/// ablation engine uses: every leave-one-out and keep-only-one machine is
/// the same configuration with a pass subset removed or kept.
impl OptimizerConfig {
    /// The stock pass units active in this configuration, in
    /// [`PassId::ALL`] order (empty for the baseline).
    pub fn active_passes(&self) -> Vec<PassId> {
        PassSet::from(*self).iter().filter_map(|p| p.id()).collect()
    }

    /// This configuration with the listed stock passes removed and every
    /// other pass's parameters (and the pipeline cost) intact. Removing a
    /// pass that is not active is the identity on the normalized form, so
    /// the result lands in the same simulation cell — an ablation of an
    /// inactive pass measures exactly zero marginal cycles without
    /// simulating anything new. Removing the last active pass yields the
    /// baseline machine.
    pub fn without_passes(&self, removed: &[PassId]) -> OptimizerConfig {
        PassSet::subset(*self, |id| !removed.contains(&id)).to_config()
    }

    /// This configuration reduced to only the listed stock passes (the
    /// add-one-in direction of an ablation matrix), keeping their
    /// parameters and the pipeline cost. Keeping no active pass yields the
    /// baseline machine.
    pub fn only_passes(&self, kept: &[PassId]) -> OptimizerConfig {
        PassSet::subset(*self, |id| kept.contains(&id)).to_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_the_baseline() {
        let cfg = PassSet::new().to_config();
        assert_eq!(cfg, OptimizerConfig::baseline().normalized());
        assert!(!cfg.enabled);
    }

    #[test]
    fn standard_passes_reproduce_the_default_config() {
        let set: PassSet = [
            Pass::cp_ra(),
            Pass::rle_sf(),
            Pass::value_feedback(),
            Pass::early_exec(),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.to_config(), OptimizerConfig::default().normalized());
        assert_eq!(set.to_config(), OptimizerConfig::default());
    }

    #[test]
    fn feedback_only_as_a_pass_list() {
        let set: PassSet = [Pass::value_feedback(), Pass::early_exec()]
            .into_iter()
            .collect();
        assert_eq!(
            set.to_config(),
            OptimizerConfig::feedback_only().normalized()
        );
    }

    #[test]
    fn presets_round_trip_through_the_bridges() {
        for cfg in [
            OptimizerConfig::default(),
            OptimizerConfig::baseline(),
            OptimizerConfig::feedback_only(),
            OptimizerConfig::discrete(256),
            OptimizerConfig {
                add_chain_depth: 3,
                mem_chain_depth: 1,
                mbc_entries: 64,
                feedback_delay: 5,
                extra_stages: 4,
                ..OptimizerConfig::default()
            },
        ] {
            let set = PassSet::from(cfg);
            assert_eq!(OptimizerConfig::from(&set), cfg.normalized(), "{cfg:?}");
        }
    }

    #[test]
    fn pass_metadata_names_paper_sections() {
        assert_eq!(Pass::cp_ra().paper_section(), "§3/§3.1");
        assert_eq!(Pass::rle_sf().paper_section(), "§3.2");
        assert_eq!(Pass::value_feedback().paper_section(), "§4");
        assert_eq!(Pass::early_exec().paper_section(), "§3.3");
        assert_eq!(Pass::cp_ra().name(), "cp-ra");
    }

    #[test]
    fn contains_and_iter_see_stock_ids() {
        let set: PassSet = [Pass::cp_ra(), Pass::early_exec()].into_iter().collect();
        assert!(set.contains(PassId::CpRa));
        assert!(set.contains(PassId::EarlyExec));
        assert!(!set.contains(PassId::RleSf));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn custom_passes_plug_in() {
        #[derive(Debug)]
        struct TinyMbc;
        impl OptPass for TinyMbc {
            fn name(&self) -> &'static str {
                "tiny-mbc"
            }
            fn configure(&self, cfg: &mut OptimizerConfig) {
                cfg.mbc_entries = 8;
            }
        }
        let set = PassSet::new()
            .with(RleSf::default())
            .with(EarlyExec)
            .with(TinyMbc);
        let cfg = set.to_config();
        assert_eq!(cfg.mbc_entries, 8);
        assert!(cfg.enable_rle_sf);
    }

    #[test]
    fn rle_sf_only_is_expressible() {
        let set = PassSet::new().with(RleSf::default()).with(EarlyExec);
        let cfg = set.to_config();
        assert!(cfg.optimize && cfg.enable_rle_sf);
        assert!(!cfg.enable_reassociation && !cfg.enable_branch_inference);
        // And it survives the round trip.
        assert_eq!(OptimizerConfig::from(PassSet::from(cfg)), cfg.normalized());
    }

    #[test]
    fn pass_id_name_round_trips() {
        for id in PassId::ALL {
            assert_eq!(PassId::from_name(id.name()), Some(id));
        }
        assert_eq!(PassId::from_name("engine"), None);
        assert_eq!(PassId::from_name("cp_ra"), None, "names are hyphenated");
    }

    #[test]
    fn active_passes_reflect_the_decomposition() {
        assert_eq!(
            OptimizerConfig::default().active_passes(),
            PassId::ALL.to_vec()
        );
        assert!(OptimizerConfig::baseline().active_passes().is_empty());
        assert_eq!(
            OptimizerConfig::feedback_only().active_passes(),
            [PassId::ValueFeedback, PassId::EarlyExec]
        );
    }

    #[test]
    fn without_passes_is_leave_one_out() {
        let full = OptimizerConfig {
            mbc_entries: 64,
            feedback_delay: 5,
            extra_stages: 4,
            ..OptimizerConfig::default()
        };
        // Removing RLE/SF keeps the other passes' parameters and the
        // pipeline cost intact.
        let no_rle = full.without_passes(&[PassId::RleSf]);
        assert!(!no_rle.enable_rle_sf);
        assert_eq!(no_rle.feedback_delay, 5, "value-feedback params survive");
        assert_eq!(no_rle.extra_stages, 4, "pipeline cost survives");
        assert_eq!(
            no_rle.active_passes(),
            [PassId::CpRa, PassId::ValueFeedback, PassId::EarlyExec]
        );
        // Removing an inactive pass is the identity on the normalized form.
        let feedback_only = OptimizerConfig::feedback_only();
        assert_eq!(
            feedback_only.without_passes(&[PassId::RleSf]),
            feedback_only.normalized()
        );
        // Removing every pass is the baseline.
        assert_eq!(
            full.without_passes(&PassId::ALL),
            OptimizerConfig::baseline().normalized()
        );
    }

    #[test]
    fn only_passes_is_add_one_in() {
        let full = OptimizerConfig::default();
        let only_vf = full.only_passes(&[PassId::ValueFeedback]);
        assert!(only_vf.enabled && only_vf.value_feedback);
        assert!(!only_vf.optimize && !only_vf.enable_early_exec);
        assert_eq!(only_vf.extra_stages, 2, "still pays the pipeline cost");
        assert_eq!(only_vf.active_passes(), [PassId::ValueFeedback]);
        // Keeping a pass the config never had yields the baseline.
        assert_eq!(
            OptimizerConfig::feedback_only().only_passes(&[PassId::RleSf]),
            OptimizerConfig::baseline().normalized()
        );
    }

    #[test]
    fn subset_drops_custom_passes_but_keeps_stock_parameters() {
        let cfg = OptimizerConfig {
            add_chain_depth: 3,
            mem_chain_depth: 1,
            ..OptimizerConfig::default()
        };
        let kept = PassSet::subset(cfg, |id| id == PassId::CpRa).to_config();
        assert_eq!(kept.add_chain_depth, 3, "CP/RA parameters preserved");
        assert!(!kept.enable_rle_sf);
        assert_eq!(kept.mem_chain_depth, 0, "RLE/SF parameters gone");
    }

    #[test]
    fn engine_options_ride_on_the_set() {
        let set = PassSet::from(Pass::cp_ra()).extra_stages(4).discrete(512);
        let cfg = set.to_config();
        assert_eq!(cfg.extra_stages, 4);
        assert_eq!(cfg.discrete_interval, 512);
    }
}
