//! Early execution and early branch resolution — the [`super::EarlyExec`]
//! pass (paper §3.3).
//!
//! Simple instructions whose inputs are fully known execute on the
//! rename-stage ALUs (the fold sites live in [`super::cp_ra`] and gate on
//! [`Optimizer::early_exec_ok`]); this module holds the control-flow half:
//! conditional branches whose condition register is known resolve at the
//! optimization stage (shortening the misprediction penalty from 20+ to
//! the front-end refill, Table 2), `bsr` link values (`pc + 4`) complete
//! immediately, and indirect jumps through known registers resolve their
//! targets. Branch-direction inference (a CP/RA feature: `bne` not taken
//! ⇒ the register is zero) also lives here because it piggybacks on
//! branch processing.

use crate::optimizer::{Bundle, Optimizer, RenameReq, Renamed, RenamedClass};
use crate::preg::SrcList;
use crate::symval::SymValue;
use contopt_isa::{ArchReg, Inst};

impl Optimizer {
    pub(crate) fn process_branch(
        &mut self,
        req: &RenameReq,
        cond: contopt_isa::Cond,
        ra: contopt_isa::Reg,
        bundle: &mut Bundle,
    ) -> Renamed {
        let d = &req.d;
        if req.mispredicted {
            self.stats.engine.mispredicted_branches += 1;
        }
        if !self.cfg.enabled {
            bundle.record(None, 0, 0);
            let map = self.rat.map(ArchReg::from(ra));
            self.hold_srcs(&[map]);
            return self.renamed(d, RenamedClass::SimpleInt, SrcList::one(map), None, false);
        }
        let va = self.view(ArchReg::from(ra), bundle);
        let budget = self.cfg.max_serial_adds();
        let usable = va.adds <= budget;
        if let (Some(v), true, true) = (va.sym.known(), usable, self.early_exec_ok()) {
            // Early branch resolution on the rename-stage ALUs.
            assert_eq!(
                cond.eval(v),
                d.taken,
                "strict check: branch `{}` resolved {} but oracle says {}",
                d.inst,
                cond.eval(v),
                d.taken
            );
            self.stats.early_exec.branches_resolved_early += 1;
            self.stats.early_exec.executed_early += 1;
            if req.mispredicted {
                self.stats.early_exec.mispredicts_recovered_early += 1;
            }
            bundle.record(None, va.adds, 0);
            let mut r = self.renamed(d, RenamedClass::Done, SrcList::new(), None, false);
            r.resolved_early = true;
            return r;
        }
        // Unresolved: executes in the core. Branch-direction inference may
        // still reveal the register's value to younger instructions.
        let srcs = SrcList::one(va.map);
        self.hold_srcs(&srcs);
        if self.optimizing() && self.cfg.enable_branch_inference && cond.implies_zero(d.taken) {
            self.rat
                .update_sym(ArchReg::from(ra), SymValue::Known(0), &mut self.pregs);
            self.stats.cp_ra.branch_inferences += 1;
        }
        bundle.record(None, 0, 0);
        self.renamed(d, RenamedClass::SimpleInt, srcs, None, false)
    }

    pub(crate) fn process_call(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        let d = &req.d;
        let link = d.pc.wrapping_add(4);
        let dst_arch = d.inst.dst();
        match d.inst {
            Inst::Bsr { .. } => {
                if self.optimizing() && self.early_exec_ok() {
                    // The link value is architecturally known.
                    let (dst, dst_new) = match dst_arch {
                        Some(a) => {
                            self.verify("bsr link", d, link);
                            let p = self.alloc_dst(d);
                            self.rat.write(a, p, SymValue::Known(link), &mut self.pregs);
                            (Some(p), true)
                        }
                        None => (None, false),
                    };
                    self.stats.early_exec.executed_early += 1;
                    bundle.record(dst_arch, 0, 0);
                    let mut r = self.renamed(d, RenamedClass::Done, SrcList::new(), dst, dst_new);
                    r.early_value = dst.map(|_| link);
                    r
                } else if self.optimizing() {
                    // No EarlyExec pass: the link value is still derived
                    // knowledge — record it while executing in the core
                    // (consistent with the Jmp path below).
                    self.process_plain_known(d, RenamedClass::SimpleInt, link, 0, bundle)
                } else {
                    self.process_plain(d, RenamedClass::SimpleInt, bundle)
                }
            }
            Inst::Jmp { ra, .. } => {
                if req.mispredicted {
                    self.stats.engine.mispredicted_branches += 1;
                }
                if !self.cfg.enabled {
                    return self.process_plain(d, RenamedClass::SimpleInt, bundle);
                }
                let va = self.view(ArchReg::from(ra), bundle);
                let target_known =
                    self.optimizing() && self.early_exec_ok() && va.sym.known().is_some();
                if target_known {
                    assert_eq!(
                        va.sym.known(),
                        Some(d.next_pc),
                        "strict check: jump target mismatch"
                    );
                }
                if !target_known {
                    self.hold_srcs(&[va.map]);
                }
                let (dst, dst_new) = match dst_arch {
                    Some(a) => {
                        let p = self.alloc_dst(d);
                        let sym = if self.optimizing() {
                            SymValue::Known(link)
                        } else {
                            SymValue::reg(p)
                        };
                        self.rat.write(a, p, sym, &mut self.pregs);
                        (Some(p), true)
                    }
                    None => (None, false),
                };
                bundle.record(dst_arch, 0, 0);
                if target_known {
                    self.stats.early_exec.executed_early += 1;
                    if req.mispredicted {
                        self.stats.early_exec.mispredicts_recovered_early += 1;
                    }
                    let mut r = self.renamed(d, RenamedClass::Done, SrcList::new(), dst, dst_new);
                    r.resolved_early = true;
                    r.early_value = dst.map(|_| link);
                    r
                } else {
                    self.renamed(
                        d,
                        RenamedClass::SimpleInt,
                        SrcList::one(va.map),
                        dst,
                        dst_new,
                    )
                }
            }
            _ => unreachable!("process_call on non-call"),
        }
    }
}
