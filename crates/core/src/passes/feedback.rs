//! Value feedback — the [`super::ValueFeedback`] pass (paper §4).
//!
//! Execution results return to the optimization tables after a
//! transmission delay ([`crate::FeedbackQueue`], Figure 12 sweeps the
//! delay) and CAM-convert symbolic RAT and MBC entries whose base is the
//! completing physical register into known constants. A claim is held on
//! the register while its value is in flight so the tag cannot be
//! reallocated before the CAM update (§3.1's reference-counting argument
//! extended to the feedback path).

use crate::optimizer::Optimizer;
use crate::preg::PhysReg;

impl Optimizer {
    /// Reports a completed execution result; it will reach the optimization
    /// tables after the configured transmission delay.
    pub fn complete(&mut self, p: PhysReg, value: u64, cycle: u64) {
        if self.cfg.enabled && self.cfg.value_feedback {
            // Hold a claim while the value is in flight so the tag cannot be
            // reallocated before the CAM update.
            self.pregs.add_ref(p);
            self.feedback.push(p, value, cycle, self.cfg.feedback_delay);
        }
    }

    /// Applies all feedback that has arrived by `now` to the RAT and MBC.
    /// Messages are popped one at a time (no intermediate collection), so
    /// the per-cycle feedback path performs no heap allocation.
    pub fn apply_feedback(&mut self, now: u64) {
        while let Some(f) = self.feedback.pop_ready(now) {
            let n = self.rat.feed_back(f.preg, f.value, &mut self.pregs)
                + self.mbc.feed_back(f.preg, f.value, &mut self.pregs);
            self.stats.value_feedback.feedback_integrations += n;
            self.pregs.release(f.preg); // in-flight claim
        }
    }
}
