//! Redundant load elimination / store forwarding — the [`super::RleSf`]
//! pass (paper §3.2).
//!
//! A Memory Bypass Cache ([`crate::Mbc`]) keyed by aligned address +
//! offset + size records the symbolic value most recently stored to or
//! loaded from each location. Known-address loads that hit are converted
//! to moves or expressions (and, with fully-known data, execute early);
//! known-address stores insert their data's symbol. Stores through
//! *unknown* addresses proceed speculatively — every forward is verified
//! against the functional oracle, and a stale entry rejects the forward
//! and invalidates itself — or conservatively flush the whole MBC when
//! [`crate::config::OptimizerConfig::flush_mbc_on_unknown_store`] is set.
//! Chained memory operations within one bundle are bounded by
//! [`crate::config::OptimizerConfig::mem_chain_depth`] (Figure 10's
//! "& 1 mem" variant).

use crate::optimizer::{Bundle, Optimizer, RenameReq, Renamed, RenamedClass};
use crate::preg::SrcList;
use crate::symval::SymValue;
use contopt_isa::{ArchReg, Inst, MemSize};

impl Optimizer {
    #[expect(
        clippy::expect_used,
        reason = "the decoder only routes memory ops here"
    )]
    pub(crate) fn process_load(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        let d = &req.d;
        self.stats.engine.mem_ops += 1;
        self.stats.engine.loads += 1;
        let (rb, disp) = d.inst.mem_addr_spec().expect("load has address spec");
        let size = d.inst.mem_size().expect("load has size");
        let is_fp = matches!(d.inst, Inst::FLd { .. });
        let (addr_sym, inh_adds, inh_mbcs) = self.fold_addr(rb, disp, bundle);
        let addr_known = addr_sym.known();

        if let Some(a) = addr_known {
            assert_eq!(
                Some(a),
                d.eff_addr,
                "strict check: early address {a:#x} != oracle {:?} for `{}`",
                d.eff_addr,
                d.inst
            );
            self.stats.engine.mem_addr_generated += 1;
        }

        let dst_arch = d.inst.dst();

        // RLE/SF: only with a known address, the feature enabled, and the
        // intra-bundle memory-chain budget unspent.
        if let (Some(a), Some(dst_a)) = (addr_known, dst_arch) {
            if self.optimizing() && self.cfg.enable_rle_sf {
                let chained = inh_mbcs + 1 > self.cfg.mem_chain_depth + 1
                    || (bundle.mbc_written.contains(&(a & !7)) && self.cfg.mem_chain_depth == 0);
                if chained {
                    self.stats.rle_sf.mem_chain_limited += 1;
                } else if self.early_exec_ok() {
                    // Forwarding completes the load at the rename stage, so
                    // it additionally requires the EarlyExec pass; without
                    // it RLE/SF only generates addresses and maintains the
                    // MBC.
                    if let Some(data) = self.mbc.lookup(a, size) {
                        if let Some(r) =
                            self.try_forward(req, a, size, data, is_fp, inh_mbcs, bundle)
                        {
                            return r;
                        }
                    }
                }
                // Miss (or rejected forward): install this load's
                // destination for future reuse.
                let p = self.alloc_dst(d);
                self.rat.write(dst_a, p, SymValue::reg(p), &mut self.pregs);
                self.mbc.insert(a, size, SymValue::reg(p), &mut self.pregs);
                bundle.mbc_written.push(a & !7);
                bundle.record(dst_arch, inh_adds, inh_mbcs + 1);
                let mut r = self.renamed(d, RenamedClass::Load, SrcList::new(), Some(p), true);
                r.addr_known = true;
                return r;
            }
        }

        // Ordinary load (unknown address, or RLE/SF unavailable).
        let srcs = if addr_known.is_some() {
            SrcList::new()
        } else {
            SrcList::one(self.rat.map(ArchReg::from(rb)))
        };
        self.hold_srcs(&srcs);
        let (dst, dst_new) = match dst_arch {
            Some(a) => {
                let p = self.alloc_dst(d);
                self.rat.write(a, p, SymValue::reg(p), &mut self.pregs);
                (Some(p), true)
            }
            None => (None, false),
        };
        bundle.record(dst_arch, 0, 0);
        let mut r = self.renamed(d, RenamedClass::Load, srcs, dst, dst_new);
        r.addr_known = addr_known.is_some();
        r
    }

    /// Attempts to forward MBC `data` into the load; returns `None` (after
    /// invalidating the stale entry) if strict value checking rejects it.
    #[allow(clippy::too_many_arguments)] // one call site; mirrors the §3.2 datapath inputs
    #[expect(
        clippy::expect_used,
        reason = "forwarding candidates were pre-checked for a destination"
    )]
    pub(crate) fn try_forward(
        &mut self,
        req: &RenameReq,
        addr: u64,
        size: MemSize,
        data: SymValue,
        is_fp: bool,
        inh_mbcs: u32,
        bundle: &mut Bundle,
    ) -> Option<Renamed> {
        let d = &req.d;
        let dst_a = d.inst.dst().expect("forwarding checked dst");
        // The stored register value, evaluated with the oracle.
        let stored = data.eval_with(|p| self.oracle[p.index()]);
        let loaded = extend(truncate(stored, size), size, signedness(&d.inst));
        if Some(loaded) != d.result {
            // Stale entry (speculative unknown-address store wrote this
            // location since) or a width-change mismatch: reject.
            self.stats.rle_sf.mbc_rejects += 1;
            self.mbc.invalidate(addr, &mut self.pregs);
            return None;
        }
        match data {
            SymValue::Known(_) => {
                // The load's value is fully known: executed in the optimizer.
                let p = self.alloc_dst(d);
                self.rat
                    .write(dst_a, p, SymValue::Known(loaded), &mut self.pregs);
                self.stats.rle_sf.loads_removed += 1;
                self.stats.early_exec.executed_early += 1;
                bundle.record(d.inst.dst(), 1, inh_mbcs + 1);
                let mut r = self.renamed(d, RenamedClass::Done, SrcList::new(), Some(p), true);
                r.early_value = Some(loaded);
                r.load_removed = true;
                r.addr_known = true;
                Some(r)
            }
            e @ SymValue::Expr { base, .. } if e.is_plain_reg() => {
                // Pure move: the destination aliases the forwarding register.
                self.rat.write(dst_a, base, e, &mut self.pregs);
                self.stats.rle_sf.loads_removed += 1;
                self.stats.early_exec.executed_early += 1;
                bundle.record(d.inst.dst(), 0, inh_mbcs + 1);
                let mut r = self.renamed(d, RenamedClass::Done, SrcList::new(), Some(base), false);
                r.load_removed = true;
                r.addr_known = true;
                Some(r)
            }
            e @ SymValue::Expr { base, .. } => {
                if is_fp || size != MemSize::Quad {
                    // A non-trivial integer expression cannot be forwarded
                    // into an FP register or through a width change; leave
                    // the entry and fall back to a normal (known-address)
                    // load.
                    return None;
                }
                // The load becomes the single-cycle expression
                // (base << scale) + offset: removed from the memory system.
                self.hold_srcs(&[base]);
                let p = self.alloc_dst(d);
                self.rat.write(dst_a, p, e, &mut self.pregs);
                self.stats.rle_sf.loads_removed += 1;
                bundle.record(d.inst.dst(), 1, inh_mbcs + 1);
                let mut r = self.renamed(
                    d,
                    RenamedClass::SimpleInt,
                    SrcList::one(base),
                    Some(p),
                    true,
                );
                r.load_removed = true;
                r.addr_known = true;
                Some(r)
            }
        }
    }

    #[expect(
        clippy::expect_used,
        reason = "the decoder only routes memory ops here"
    )]
    pub(crate) fn process_store(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        let d = &req.d;
        self.stats.engine.mem_ops += 1;
        let (rb, disp) = d.inst.mem_addr_spec().expect("store has address spec");
        let size = d.inst.mem_size().expect("store has size");
        let (addr_sym, _inh_adds, _inh_mbcs) = self.fold_addr(rb, disp, bundle);
        let addr_known = addr_sym.known();

        // Data source view.
        let data_arch = d.inst.srcs()[0].expect("store has a data source");
        let data_view = self.view(data_arch, bundle);
        let data_sym = if self.cfg.enabled && self.cfg.optimize {
            data_view.sym
        } else {
            SymValue::reg(data_view.map)
        };

        let mut srcs = SrcList::new();
        if data_sym.known().is_none() {
            srcs.push(data_view.map);
        }
        if addr_known.is_none() {
            srcs.push(self.rat.map(ArchReg::from(rb)));
        }
        self.hold_srcs(&srcs);

        if let Some(a) = addr_known {
            assert_eq!(
                Some(a),
                d.eff_addr,
                "strict check: early store address {a:#x} != oracle {:?}",
                d.eff_addr
            );
            self.stats.engine.mem_addr_generated += 1;
            if self.optimizing() && self.cfg.enable_rle_sf {
                // Store forwarding: record the data's symbolic value. Use
                // the mapping register when the symbol is a non-trivial
                // expression of the *data* register (the stored value equals
                // the register's value, which the mapping names directly).
                let recorded = match data_sym {
                    k @ SymValue::Known(_) => k,
                    e @ SymValue::Expr { .. } if e.is_plain_reg() => e,
                    _ => SymValue::reg(data_view.map),
                };
                self.mbc.insert(a, size, recorded, &mut self.pregs);
                bundle.mbc_written.push(a & !7);
            }
        } else if self.optimizing() && self.cfg.enable_rle_sf && self.cfg.flush_mbc_on_unknown_store
        {
            self.mbc.flush(&mut self.pregs);
        }

        bundle.record(None, 0, 0);
        let mut r = self.renamed(d, RenamedClass::Store, srcs, None, false);
        r.addr_known = addr_known.is_some();
        r
    }
}

fn signedness(inst: &Inst) -> bool {
    matches!(inst, Inst::Ld { signed: true, .. })
}

#[inline]
fn truncate(v: u64, size: MemSize) -> u64 {
    match size {
        MemSize::Byte => v & 0xff,
        MemSize::Word => v & 0xffff,
        MemSize::Long => v & 0xffff_ffff,
        MemSize::Quad => v,
    }
}

#[inline]
fn extend(raw: u64, size: MemSize, signed: bool) -> u64 {
    if !signed {
        return raw;
    }
    match size {
        MemSize::Byte => raw as u8 as i8 as i64 as u64,
        MemSize::Word => raw as u16 as i16 as i64 as u64,
        MemSize::Long => raw as u32 as i32 as i64 as u64,
        MemSize::Quad => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_and_extend_match_memory_semantics() {
        assert_eq!(truncate(0x1234_5678_9abc_def0, MemSize::Byte), 0xf0);
        assert_eq!(truncate(0x1234_5678_9abc_def0, MemSize::Word), 0xdef0);
        assert_eq!(truncate(0x1234_5678_9abc_def0, MemSize::Long), 0x9abc_def0);
        assert_eq!(extend(0xf0, MemSize::Byte, true), 0xffff_ffff_ffff_fff0);
        assert_eq!(extend(0xf0, MemSize::Byte, false), 0xf0);
        assert_eq!(
            extend(0x9abc_def0, MemSize::Long, true),
            0xffff_ffff_9abc_def0
        );
    }
}
