//! Constant propagation / reassociation — the [`super::CpRa`] pass
//! (paper §3, §3.1).
//!
//! Each architectural register's RAT entry carries a symbolic value
//! `(base_preg << scale) ± offset`; ALU operations and `lda` address
//! formation fold into it through [`sym_add`], [`sym_add_imm`],
//! [`sym_scaled_add`], [`sym_shl`], and [`sym_sub`]. Fully-known results
//! hand over to the early-execution pass
//! ([`super::early_exec`]); plain-register expressions become eliminated
//! moves; non-trivial expressions simplify the instruction to a
//! single-cycle `(base << scale) + offset` form whose only dependence is
//! the earlier producer (tree-height reduction). Serial-addition chains
//! within a bundle are bounded by
//! [`crate::config::OptimizerConfig::add_chain_depth`] (§6.2, Figure 10);
//! power-of-two multiplies strength-reduce to shifts.

use crate::optimizer::{Bundle, Optimizer, RenameReq, Renamed, RenamedClass, SrcView};
use crate::preg::SrcList;
use crate::symval::{sym_add, sym_add_imm, sym_scaled_add, sym_shl, sym_sub, Folded, SymValue};
use contopt_isa::{AluOp, ArchReg, Operand};

impl Optimizer {
    pub(crate) fn process_alu(
        &mut self,
        req: &RenameReq,
        op: AluOp,
        ra: contopt_isa::Reg,
        rb: Operand,
        _rc: contopt_isa::Reg,
        bundle: &mut Bundle,
    ) -> Renamed {
        let d = &req.d;
        if !self.cfg.enabled {
            let class = if op.is_simple() {
                RenamedClass::SimpleInt
            } else {
                RenamedClass::ComplexInt
            };
            return self.process_plain(d, class, bundle);
        }

        let va = self.view(ArchReg::from(ra), bundle);
        let vb = match rb {
            Operand::Reg(r) => Some(self.view(ArchReg::from(r), bundle)),
            Operand::Imm(_) => None,
        };

        // First attempt with full symbolic views; retry with plain views if
        // the serial-addition budget is exceeded.
        let attempt = self.fold_alu(op, &va, rb, &vb);
        let budget = self.cfg.max_serial_adds();
        let (folded, va, vb) = match attempt {
            Some((f, inherited)) if inherited + f.used_add as u32 > budget => {
                self.stats.engine.chain_limited += 1;
                let pa = Self::plain(&va);
                let pb = vb.as_ref().map(Self::plain);
                let f2 = self.fold_alu(op, &pa, rb, &pb).map(|(f, _)| f);
                (f2, pa, pb)
            }
            Some((f, _)) => (Some(f), va, vb),
            None => (None, va, vb),
        };

        // In feedback-only mode, only fully-known results may be used.
        let folded = match folded {
            Some(f) if f.value.known().is_none() && !self.allow_expr() => None,
            other => other,
        };

        let dst_arch = d.inst.dst();
        // A multiply that folded did so via power-of-two strength
        // reduction. The fold is always consumed — executed early,
        // simplified to a shift form, or recorded as a derived constant —
        // so the stat is charged once here.
        let reduced_mul = op == AluOp::Mulq && folded.is_some();
        if reduced_mul {
            self.stats.cp_ra.strength_reductions += 1;
        }

        match folded {
            Some(f) => match f.value {
                SymValue::Known(v) if (op.is_simple() || reduced_mul) && self.early_exec_ok() => {
                    // Early execution on the rename-stage ALUs.
                    if let Some(dst_a) = dst_arch {
                        self.verify("early alu", d, v);
                        let p = self.alloc_dst(d);
                        self.rat
                            .write(dst_a, p, SymValue::Known(v), &mut self.pregs);
                        self.stats.early_exec.executed_early += 1;
                        bundle.record(dst_arch, va.adds.max(vb.map_or(0, |x| x.adds)) + 1, 0);
                        let mut r =
                            self.renamed(d, RenamedClass::Done, SrcList::new(), Some(p), true);
                        r.early_value = Some(v);
                        return r;
                    }
                    // Result discarded (dst is a zero register): nothing to do.
                    bundle.record(None, 0, 0);
                    self.stats.early_exec.executed_early += 1;
                    self.renamed(d, RenamedClass::Done, SrcList::new(), None, false)
                }
                SymValue::Known(v) => {
                    // Known result that may not complete at rename: either a
                    // multi-cycle op (non-reduced multiply of two constants)
                    // or the EarlyExec pass is not registered. Execute in
                    // the core, but record the derived constant so younger
                    // instructions still see the knowledge.
                    let class = if op.is_simple() {
                        RenamedClass::SimpleInt
                    } else {
                        RenamedClass::ComplexInt
                    };
                    let adds = va.adds.max(vb.map_or(0, |x| x.adds)) + f.used_add as u32;
                    self.process_plain_known(d, class, v, adds, bundle)
                }
                e @ SymValue::Expr { base, .. } => {
                    let Some(dst_a) = dst_arch else {
                        // Zero-register destination: no architectural effect.
                        bundle.record(None, 0, 0);
                        return self.renamed(d, RenamedClass::Done, SrcList::new(), None, false);
                    };
                    if e.is_plain_reg() && self.early_exec_ok() {
                        // Move elimination: remap the destination onto the
                        // producer; no execution needed. Completing the
                        // instruction at rename requires the EarlyExec
                        // pass; without it the move executes as a
                        // simplified single-cycle op below.
                        self.rat.write(dst_a, base, e, &mut self.pregs);
                        self.stats.cp_ra.moves_eliminated += 1;
                        self.stats.early_exec.executed_early += 1;
                        bundle.record(dst_arch, 0, 0);
                        return self.renamed(
                            d,
                            RenamedClass::Done,
                            SrcList::new(),
                            Some(base),
                            false,
                        );
                    }
                    // Simplified: the instruction now computes
                    // (base << scale) + offset — a single-cycle form whose
                    // only dependence is the (earlier) base producer.
                    self.hold_srcs(&[base]);
                    let p = self.alloc_dst(d);
                    self.rat.write(dst_a, p, e, &mut self.pregs);
                    let total = va.adds.max(vb.map_or(0, |x| x.adds)) + f.used_add as u32;
                    bundle.record(dst_arch, total, 0);
                    self.renamed(
                        d,
                        RenamedClass::SimpleInt,
                        SrcList::one(base),
                        Some(p),
                        true,
                    )
                }
            },
            None => {
                let class = if op.is_simple() {
                    RenamedClass::SimpleInt
                } else {
                    RenamedClass::ComplexInt
                };
                self.process_plain(d, class, bundle)
            }
        }
    }

    /// The CP/RA fold for an ALU op. Returns the folded value plus the
    /// maximum in-bundle serial-add cost inherited from the sources whose
    /// symbols were consumed.
    pub(crate) fn fold_alu(
        &self,
        op: AluOp,
        va: &SrcView,
        rb: Operand,
        vb: &Option<SrcView>,
    ) -> Option<(Folded, u32)> {
        let sa = va.sym;
        let (sb, b_adds) = match (rb, vb) {
            (Operand::Imm(k), _) => (SymValue::Known(k as u64), 0),
            (Operand::Reg(_), Some(v)) => (v.sym, v.adds),
            (Operand::Reg(_), None) => unreachable!("register operand without view"),
        };
        let inherited = va.adds.max(b_adds);
        let f = match op {
            AluOp::Addq => match rb {
                Operand::Imm(k) => Some(sym_add_imm(sa, k)),
                Operand::Reg(_) => sym_add(sa, sb),
            },
            AluOp::Subq => match rb {
                Operand::Imm(k) => Some(sym_add_imm(sa, k.wrapping_neg())),
                Operand::Reg(_) => sym_sub(sa, sb),
            },
            AluOp::S4Addq => sym_scaled_add(sa, 2, sb),
            AluOp::S8Addq => sym_scaled_add(sa, 3, sb),
            AluOp::Sll => match sb.known() {
                Some(k) if k < 64 => sym_shl(sa, k as u32),
                _ => None,
            },
            AluOp::Mulq => {
                // Strength reduction: multiply by a power of two.
                let (val, konst) = match (sa.known(), sb.known()) {
                    (_, Some(k)) => (sa, Some(k)),
                    (Some(k), _) => (sb, Some(k)),
                    _ => (sa, None),
                };
                match konst {
                    Some(k) if k.is_power_of_two() => sym_shl(val, k.trailing_zeros()),
                    _ => None,
                }
            }
            _ => {
                // Generic simple ops: executable only with fully known
                // inputs.
                match (sa.known(), sb.known()) {
                    (Some(a), Some(b)) => Some(Folded {
                        value: SymValue::Known(op.eval(a, b)),
                        used_add: true,
                    }),
                    _ => None,
                }
            }
        };
        f.map(|f| (f, inherited))
    }

    pub(crate) fn process_lda(
        &mut self,
        req: &RenameReq,
        _rc: contopt_isa::Reg,
        rb: contopt_isa::Reg,
        disp: i64,
        bundle: &mut Bundle,
    ) -> Renamed {
        let d = &req.d;
        if !self.cfg.enabled {
            return self.process_plain(d, RenamedClass::SimpleInt, bundle);
        }
        let vb = self.view(ArchReg::from(rb), bundle);
        let budget = self.cfg.max_serial_adds();
        let mut f = sym_add_imm(vb.sym, disp);
        let mut inherited = vb.adds;
        if inherited + f.used_add as u32 > budget {
            self.stats.engine.chain_limited += 1;
            f = sym_add_imm(SymValue::reg(vb.map), disp);
            inherited = 0;
        }
        if f.value.known().is_none() && !self.allow_expr() {
            return self.process_plain(d, RenamedClass::SimpleInt, bundle);
        }
        let dst_arch = d.inst.dst();
        match f.value {
            SymValue::Known(v) if self.early_exec_ok() => {
                let Some(dst_a) = dst_arch else {
                    bundle.record(None, 0, 0);
                    self.stats.early_exec.executed_early += 1;
                    return self.renamed(d, RenamedClass::Done, SrcList::new(), None, false);
                };
                self.verify("early lda", d, v);
                let p = self.alloc_dst(d);
                self.rat
                    .write(dst_a, p, SymValue::Known(v), &mut self.pregs);
                self.stats.early_exec.executed_early += 1;
                bundle.record(dst_arch, inherited + 1, 0);
                let mut r = self.renamed(d, RenamedClass::Done, SrcList::new(), Some(p), true);
                r.early_value = Some(v);
                r
            }
            SymValue::Known(v) => {
                // Known address but no EarlyExec pass: compute in the core,
                // recording the derived constant for younger instructions.
                self.process_plain_known(
                    d,
                    RenamedClass::SimpleInt,
                    v,
                    inherited + f.used_add as u32,
                    bundle,
                )
            }
            e @ SymValue::Expr { base, .. } => {
                let Some(dst_a) = dst_arch else {
                    bundle.record(None, 0, 0);
                    return self.renamed(d, RenamedClass::Done, SrcList::new(), None, false);
                };
                if e.is_plain_reg() && self.early_exec_ok() {
                    // `mov` (lda 0(rb)): eliminated through reassociation.
                    // Completion at rename requires the EarlyExec pass.
                    self.rat.write(dst_a, base, e, &mut self.pregs);
                    self.stats.cp_ra.moves_eliminated += 1;
                    self.stats.early_exec.executed_early += 1;
                    bundle.record(dst_arch, 0, 0);
                    return self.renamed(d, RenamedClass::Done, SrcList::new(), Some(base), false);
                }
                self.hold_srcs(&[base]);
                let p = self.alloc_dst(d);
                self.rat.write(dst_a, p, e, &mut self.pregs);
                bundle.record(dst_arch, inherited + f.used_add as u32, 0);
                self.renamed(
                    d,
                    RenamedClass::SimpleInt,
                    SrcList::one(base),
                    Some(p),
                    true,
                )
            }
        }
    }

    /// Resolves a memory op's address symbolically; returns
    /// `(address-symbol, inherited adds, inherited mbc accesses)`.
    pub(crate) fn fold_addr(
        &mut self,
        base: contopt_isa::Reg,
        disp: i64,
        bundle: &Bundle,
    ) -> (SymValue, u32, u32) {
        let vb = self.view(ArchReg::from(base), bundle);
        if !self.cfg.enabled {
            return (SymValue::reg(vb.map), 0, 0);
        }
        let f = sym_add_imm(vb.sym, disp);
        let budget = self.cfg.max_serial_adds();
        if vb.adds + f.used_add as u32 > budget {
            self.stats.engine.chain_limited += 1;
            return (SymValue::reg(vb.map), 0, 0);
        }
        (f.value, vb.adds, vb.mbcs)
    }
}
