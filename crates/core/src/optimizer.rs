//! The continuous optimizer: CP/RA + RLE/SF + value feedback + early
//! execution, integrated with register renaming.
//!
//! [`Optimizer::rename_bundle`] processes one rename packet exactly as §3 of
//! the paper describes: each instruction reads symbolic source values from
//! the [`SymRat`], the CP/RA step folds constants and reassociates
//! `(base << scale) + offset` forms, the RLE/SF step matches known-address
//! loads against the [`Mbc`], and instructions whose inputs are fully known
//! execute on the rename-stage ALUs. Serial-addition chains and chained
//! memory accesses within a bundle are bounded per the configuration
//! (§6.2).
//!
//! Every value the optimizer derives is checked against the functional
//! oracle (the paper's "strict expression and value checking"); a mismatch
//! in the CP/RA path is a simulator bug and panics, while a mismatch on an
//! MBC forward (a stale entry left by a speculative unknown-address store)
//! rejects the forward and invalidates the entry.

use crate::config::OptimizerConfig;
use crate::feedback::FeedbackQueue;
use crate::mbc::{Mbc, MbcStats};
use crate::preg::{PhysReg, PregFile};
use crate::rat::SymRat;
use crate::stats::OptStats;
use crate::symval::{sym_add, sym_add_imm, sym_scaled_add, sym_shl, sym_sub, Folded, SymValue};
use contopt_emu::DynInst;
use contopt_isa::{AluOp, ArchReg, Inst, MemSize, Operand};

/// Where a renamed instruction goes after the rename/optimize stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenamedClass {
    /// Fully handled in the optimizer (early-executed, eliminated, or
    /// resolved); it only occupies a reorder-buffer slot until retirement.
    Done,
    /// Single-cycle integer ALU (includes unresolved branches).
    SimpleInt,
    /// Multi-cycle integer (multiply).
    ComplexInt,
    /// Floating-point unit.
    Fp,
    /// Load: address generation + data-cache access.
    Load,
    /// Store: address generation; data written at retire.
    Store,
}

/// One instruction after rename/optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct Renamed {
    /// Dynamic sequence number (matches the [`DynInst`]).
    pub seq: u64,
    /// Post-optimization routing.
    pub class: RenamedClass,
    /// Physical registers this instruction must wait for before issuing.
    /// Constant-propagated operands are embedded and appear as no
    /// dependence; reassociated operands point at the *earlier* producer.
    /// A consumer reference is held on each and must be released (via
    /// [`Optimizer::release`]) when the instruction completes.
    pub srcs: Vec<PhysReg>,
    /// Destination physical register, if the instruction writes one.
    pub dst: Option<PhysReg>,
    /// Whether `dst` was freshly allocated (`false` for eliminated moves and
    /// forwarded loads that alias an existing register). A producer
    /// reference is held on freshly allocated registers and must be
    /// released when the instruction completes.
    pub dst_new: bool,
    /// The value computed in the optimizer, for early-executed instructions.
    pub early_value: Option<u64>,
    /// Whether a branch was resolved at the optimization stage.
    pub resolved_early: bool,
    /// Whether a load was removed (converted to a move / expression).
    pub load_removed: bool,
    /// Whether a memory op's effective address was generated early.
    pub addr_known: bool,
}

/// A rename request: the dynamic instruction plus what the front end knows.
#[derive(Debug, Clone, Copy)]
pub struct RenameReq {
    /// The oracle record from the functional emulator.
    pub d: DynInst,
    /// Whether the front-end predictor mispredicted this (control)
    /// instruction — the pipeline learns this at fetch from the oracle.
    pub mispredicted: bool,
}

#[derive(Debug, Clone, Copy)]
struct SrcView {
    map: PhysReg,
    sym: SymValue,
    /// Serial rename-stage additions behind this symbol within the current
    /// bundle (0 when the producer is outside the bundle or did no ALU
    /// work).
    adds: u32,
    /// Serial MBC accesses behind this symbol within the current bundle.
    mbcs: u32,
}

struct Bundle {
    /// arch-reg index → slot that wrote it in this bundle.
    writer: [Option<u8>; contopt_isa::NUM_ARCH_REGS],
    adds: Vec<u32>,
    mbcs: Vec<u32>,
    /// Aligned addresses written into the MBC this bundle.
    mbc_written: Vec<u64>,
}

impl Bundle {
    fn new() -> Bundle {
        Bundle {
            writer: [None; contopt_isa::NUM_ARCH_REGS],
            adds: Vec::new(),
            mbcs: Vec::new(),
            mbc_written: Vec::new(),
        }
    }

    fn costs(&self, a: ArchReg) -> (u32, u32) {
        match self.writer[a.index()] {
            Some(s) => (self.adds[s as usize], self.mbcs[s as usize]),
            None => (0, 0),
        }
    }

    fn record(&mut self, dst: Option<ArchReg>, adds: u32, mbcs: u32) {
        let slot = self.adds.len() as u8;
        self.adds.push(adds);
        self.mbcs.push(mbcs);
        if let Some(a) = dst {
            self.writer[a.index()] = Some(slot);
        }
    }
}

/// The rename/optimize unit.
///
/// Owns the physical register file, the symbolic RAT, the Memory Bypass
/// Cache, and the value-feedback path. With [`OptimizerConfig::baseline`]
/// it degrades to a plain register renamer, so one unit serves both the
/// baseline and the optimized machine.
#[derive(Debug, Clone)]
pub struct Optimizer {
    cfg: OptimizerConfig,
    pregs: PregFile,
    rat: SymRat,
    mbc: Mbc,
    feedback: FeedbackQueue,
    stats: OptStats,
    /// Oracle architectural value of each physical register; used only for
    /// strict value checking, never to drive an optimization.
    oracle: Vec<u64>,
}

impl Optimizer {
    /// Creates the unit with `preg_count` physical registers and the given
    /// initial architectural register values.
    pub fn new(
        cfg: OptimizerConfig,
        preg_count: usize,
        initial: impl Fn(ArchReg) -> u64,
    ) -> Optimizer {
        let mut pregs = PregFile::new(preg_count);
        let track_known = cfg.enabled && cfg.optimize;
        let rat = SymRat::new(&mut pregs, &initial, track_known);
        let mut oracle = vec![0u64; preg_count];
        for i in 0..contopt_isa::NUM_ARCH_REGS {
            let a = ArchReg::from_index(i);
            oracle[rat.map(a).index()] = if a.is_zero() { 0 } else { initial(a) };
        }
        Optimizer {
            mbc: Mbc::new(cfg.mbc_entries),
            cfg,
            pregs,
            rat,
            feedback: FeedbackQueue::new(),
            stats: OptStats::default(),
            oracle,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.cfg
    }

    /// Optimizer statistics (Table 3 counters).
    pub fn stats(&self) -> OptStats {
        self.stats
    }

    /// Memory Bypass Cache statistics.
    pub fn mbc_stats(&self) -> MbcStats {
        self.mbc.stats()
    }

    /// The physical register file (for capacity/occupancy reporting).
    pub fn pregs(&self) -> &PregFile {
        &self.pregs
    }

    /// The oracle value of a live physical register.
    pub fn oracle_value(&self, p: PhysReg) -> u64 {
        self.oracle[p.index()]
    }

    /// Current RAT mapping (for tests and the retirement checker).
    pub fn rat_map(&self, a: ArchReg) -> PhysReg {
        self.rat.map(a)
    }

    /// Current RAT symbol (for tests).
    pub fn rat_sym(&self, a: ArchReg) -> SymValue {
        self.rat.sym(a)
    }

    /// Whether at least one physical register is free (rename can proceed).
    pub fn can_rename(&self) -> bool {
        self.pregs.live_count() < self.pregs.capacity()
    }

    /// Releases one reference (consumer or producer claim) on `p`.
    pub fn release(&mut self, p: PhysReg) {
        self.pregs.release(p);
    }

    /// Reports a completed execution result; it will reach the optimization
    /// tables after the configured transmission delay.
    pub fn complete(&mut self, p: PhysReg, value: u64, cycle: u64) {
        if self.cfg.enabled && self.cfg.value_feedback {
            // Hold a claim while the value is in flight so the tag cannot be
            // reallocated before the CAM update.
            self.pregs.add_ref(p);
            self.feedback.push(p, value, cycle, self.cfg.feedback_delay);
        }
    }

    /// Applies all feedback that has arrived by `now` to the RAT and MBC.
    pub fn apply_feedback(&mut self, now: u64) {
        let msgs: Vec<_> = self.feedback.drain_ready(now).collect();
        for f in msgs {
            let n = self.rat.feed_back(f.preg, f.value, &mut self.pregs)
                + self.mbc.feed_back(f.preg, f.value, &mut self.pregs);
            self.stats.feedback_integrations += n;
            self.pregs.release(f.preg); // in-flight claim
        }
    }

    /// Renames (and, when enabled, optimizes) one bundle of up to
    /// rename-width instructions. Returns the renamed instructions in
    /// order; stops short if the physical register pool is exhausted
    /// (the pipeline retries the remainder next cycle).
    pub fn rename_bundle(&mut self, now: u64, reqs: &[RenameReq]) -> Vec<Renamed> {
        self.apply_feedback(now);
        // Discrete (offline-style) optimization: invalidate the tables at
        // every trace boundary (§3.4).
        let interval = self.cfg.discrete_interval;
        if interval > 0 && self.optimizing() {
            let before = self.stats.insts / interval;
            let after = (self.stats.insts + reqs.len() as u64) / interval;
            if after > before {
                self.rat.invalidate_syms(&mut self.pregs);
                self.mbc.flush(&mut self.pregs);
                self.stats.trace_resets += 1;
            }
        }
        let mut bundle = Bundle::new();
        let mut out = Vec::with_capacity(reqs.len());
        for req in reqs {
            if !self.can_rename() {
                break;
            }
            out.push(self.process(req, &mut bundle));
        }
        out
    }

    // ---- internals -----------------------------------------------------

    fn view(&self, a: ArchReg, bundle: &Bundle) -> SrcView {
        let (adds, mbcs) = bundle.costs(a);
        SrcView {
            map: self.rat.map(a),
            sym: self.rat.sym(a),
            adds,
            mbcs,
        }
    }

    /// Downgrades a source to its plain mapping (ignoring in-bundle symbolic
    /// state) — used when the serial-addition budget is exceeded.
    fn plain(v: &SrcView) -> SrcView {
        SrcView {
            map: v.map,
            sym: SymValue::reg(v.map),
            adds: 0,
            mbcs: 0,
        }
    }

    fn optimizing(&self) -> bool {
        self.cfg.enabled && self.cfg.optimize
    }

    /// In feedback-only mode, symbolic expressions may not be derived; only
    /// fully-known results (from fed-back values and immediates) are used.
    fn allow_expr(&self) -> bool {
        self.optimizing() && self.cfg.enable_reassociation
    }

    fn verify(&self, what: &str, d: &DynInst, got: u64) {
        let want = d.result.unwrap_or_else(|| {
            panic!("strict check: {what} produced a value for {} which has none", d.inst)
        });
        assert_eq!(
            got, want,
            "strict value check failed ({what}) at pc {:#x} for `{}`: optimizer {got:#x} != oracle {want:#x}",
            d.pc, d.inst
        );
    }

    fn alloc_dst(&mut self, d: &DynInst) -> PhysReg {
        let p = self.pregs.alloc().expect("caller checked can_rename");
        self.oracle[p.index()] = d.result.unwrap_or(0);
        p
    }

    /// Take consumer references on the dependence registers.
    fn hold_srcs(&mut self, srcs: &[PhysReg]) {
        for &p in srcs {
            self.pregs.add_ref(p);
        }
    }

    /// Builds the [`Renamed`] record. Consumer references on `srcs` must
    /// already have been taken (via [`Self::hold_srcs`]) *before* any RAT or
    /// MBC mutation that could release those registers.
    fn renamed(
        &mut self,
        d: &DynInst,
        class: RenamedClass,
        srcs: Vec<PhysReg>,
        dst: Option<PhysReg>,
        dst_new: bool,
    ) -> Renamed {
        Renamed {
            seq: d.seq,
            class,
            srcs,
            dst,
            dst_new,
            early_value: None,
            resolved_early: false,
            load_removed: false,
            addr_known: false,
        }
    }

    fn process(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        let d = &req.d;
        self.stats.insts += 1;
        match d.inst {
            Inst::Alu { op, ra, rb, rc } => self.process_alu(req, op, ra, rb, rc, bundle),
            Inst::Lda { rc, rb, disp } => self.process_lda(req, rc, rb, disp, bundle),
            Inst::Ld { .. } | Inst::FLd { .. } => self.process_load(req, bundle),
            Inst::St { .. } | Inst::FSt { .. } => self.process_store(req, bundle),
            Inst::Br { cond, ra, .. } => self.process_branch(req, cond, ra, bundle),
            Inst::Bru { .. } => {
                bundle.record(None, 0, 0);
                self.renamed(d, RenamedClass::Done, vec![], None, false)
            }
            Inst::Bsr { .. } | Inst::Jmp { .. } => self.process_call(req, bundle),
            Inst::FAlu { .. } | Inst::FCmp { .. } | Inst::Itof { .. } | Inst::Ftoi { .. } => {
                self.process_fp(req, bundle)
            }
            Inst::Halt | Inst::Nop => {
                bundle.record(None, 0, 0);
                self.renamed(d, RenamedClass::Done, vec![], None, false)
            }
        }
    }

    /// Plain renaming of an instruction: map sources, allocate a fresh
    /// destination with a self-referencing symbol. Dependences on
    /// known-valued sources are still dropped (constant propagation into
    /// otherwise-unoptimizable instructions).
    fn process_plain(
        &mut self,
        d: &DynInst,
        class: RenamedClass,
        bundle: &mut Bundle,
    ) -> Renamed {
        let mut srcs = Vec::new();
        for a in d.inst.srcs().into_iter().flatten() {
            let v = self.view(a, bundle);
            if v.sym.known().is_none() {
                srcs.push(v.map);
            }
        }
        self.hold_srcs(&srcs);
        let (dst, dst_new) = match d.inst.dst() {
            Some(a) => {
                let p = self.alloc_dst(d);
                self.rat.write(a, p, SymValue::reg(p), &mut self.pregs);
                (Some(p), true)
            }
            None => (None, false),
        };
        bundle.record(d.inst.dst(), 0, 0);
        self.renamed(d, class, srcs, dst, dst_new)
    }

    fn process_alu(
        &mut self,
        req: &RenameReq,
        op: AluOp,
        ra: contopt_isa::Reg,
        rb: Operand,
        _rc: contopt_isa::Reg,
        bundle: &mut Bundle,
    ) -> Renamed {
        let d = &req.d;
        if !self.cfg.enabled {
            let class = if op.is_simple() {
                RenamedClass::SimpleInt
            } else {
                RenamedClass::ComplexInt
            };
            return self.process_plain(d, class, bundle);
        }

        let va = self.view(ArchReg::from(ra), bundle);
        let vb = match rb {
            Operand::Reg(r) => Some(self.view(ArchReg::from(r), bundle)),
            Operand::Imm(_) => None,
        };

        // First attempt with full symbolic views; retry with plain views if
        // the serial-addition budget is exceeded.
        let attempt = self.fold_alu(op, &va, rb, &vb);
        let budget = self.cfg.max_serial_adds();
        let (folded, va, vb) = match attempt {
            Some((f, inherited)) if inherited + f.used_add as u32 > budget => {
                self.stats.chain_limited += 1;
                let pa = Self::plain(&va);
                let pb = vb.as_ref().map(Self::plain);
                let f2 = self.fold_alu(op, &pa, rb, &pb).map(|(f, _)| f);
                (f2, pa, pb)
            }
            Some((f, _)) => (Some(f), va, vb),
            None => (None, va, vb),
        };

        // In feedback-only mode, only fully-known results may be used.
        let folded = match folded {
            Some(f) if f.value.known().is_none() && !self.allow_expr() => None,
            other => other,
        };

        let dst_arch = d.inst.dst();
        let reduced_mul = op == AluOp::Mulq && folded.is_some();
        if reduced_mul {
            self.stats.strength_reductions += 1;
        }

        match folded {
            Some(f) => match f.value {
                SymValue::Known(v) if op.is_simple() || reduced_mul => {
                    // Early execution on the rename-stage ALUs.
                    if dst_arch.is_some() {
                        self.verify("early alu", d, v);
                        let p = self.alloc_dst(d);
                        self.rat
                            .write(dst_arch.unwrap(), p, SymValue::Known(v), &mut self.pregs);
                        self.stats.executed_early += 1;
                        bundle.record(dst_arch, va.adds.max(vb.map_or(0, |x| x.adds)) + 1, 0);
                        let mut r =
                            self.renamed(d, RenamedClass::Done, vec![], Some(p), true);
                        r.early_value = Some(v);
                        return r;
                    }
                    // Result discarded (dst is a zero register): nothing to do.
                    bundle.record(None, 0, 0);
                    self.stats.executed_early += 1;
                    self.renamed(d, RenamedClass::Done, vec![], None, false)
                }
                SymValue::Known(_) => {
                    // Known result but multi-cycle op (non-reduced multiply
                    // of two constants): must still execute in the core.
                    self.process_plain(d, RenamedClass::ComplexInt, bundle)
                }
                e @ SymValue::Expr { base, .. } => {
                    let Some(dst_a) = dst_arch else {
                        // Zero-register destination: no architectural effect.
                        bundle.record(None, 0, 0);
                        return self.renamed(d, RenamedClass::Done, vec![], None, false);
                    };
                    if e.is_plain_reg() {
                        // Move elimination: remap the destination onto the
                        // producer; no execution needed.
                        self.rat.write(dst_a, base, e, &mut self.pregs);
                        self.stats.moves_eliminated += 1;
                        self.stats.executed_early += 1;
                        bundle.record(dst_arch, 0, 0);
                        return self.renamed(d, RenamedClass::Done, vec![], Some(base), false);
                    }
                    // Simplified: the instruction now computes
                    // (base << scale) + offset — a single-cycle form whose
                    // only dependence is the (earlier) base producer.
                    self.hold_srcs(&[base]);
                    let p = self.alloc_dst(d);
                    self.rat.write(dst_a, p, e, &mut self.pregs);
                    let total = va.adds.max(vb.map_or(0, |x| x.adds)) + f.used_add as u32;
                    bundle.record(dst_arch, total, 0);
                    self.renamed(d, RenamedClass::SimpleInt, vec![base], Some(p), true)
                }
            },
            None => {
                let class = if op.is_simple() {
                    RenamedClass::SimpleInt
                } else {
                    RenamedClass::ComplexInt
                };
                self.process_plain(d, class, bundle)
            }
        }
    }

    /// The CP/RA fold for an ALU op. Returns the folded value plus the
    /// maximum in-bundle serial-add cost inherited from the sources whose
    /// symbols were consumed.
    fn fold_alu(
        &self,
        op: AluOp,
        va: &SrcView,
        rb: Operand,
        vb: &Option<SrcView>,
    ) -> Option<(Folded, u32)> {
        let sa = va.sym;
        let (sb, b_adds) = match (rb, vb) {
            (Operand::Imm(k), _) => (SymValue::Known(k as u64), 0),
            (Operand::Reg(_), Some(v)) => (v.sym, v.adds),
            (Operand::Reg(_), None) => unreachable!("register operand without view"),
        };
        let inherited = va.adds.max(b_adds);
        let f = match op {
            AluOp::Addq => match rb {
                Operand::Imm(k) => Some(sym_add_imm(sa, k)),
                Operand::Reg(_) => sym_add(sa, sb),
            },
            AluOp::Subq => match rb {
                Operand::Imm(k) => Some(sym_add_imm(sa, k.wrapping_neg())),
                Operand::Reg(_) => sym_sub(sa, sb),
            },
            AluOp::S4Addq => sym_scaled_add(sa, 2, sb),
            AluOp::S8Addq => sym_scaled_add(sa, 3, sb),
            AluOp::Sll => match sb.known() {
                Some(k) if k < 64 => sym_shl(sa, k as u32),
                _ => None,
            },
            AluOp::Mulq => {
                // Strength reduction: multiply by a power of two.
                let (val, konst) = match (sa.known(), sb.known()) {
                    (_, Some(k)) => (sa, Some(k)),
                    (Some(k), _) => (sb, Some(k)),
                    _ => (sa, None),
                };
                match konst {
                    Some(k) if k.is_power_of_two() => sym_shl(val, k.trailing_zeros()),
                    _ => None,
                }
            }
            _ => {
                // Generic simple ops: executable only with fully known
                // inputs.
                match (sa.known(), sb.known()) {
                    (Some(a), Some(b)) => Some(Folded {
                        value: SymValue::Known(op.eval(a, b)),
                        used_add: true,
                    }),
                    _ => None,
                }
            }
        };
        f.map(|f| (f, inherited))
    }

    fn process_lda(
        &mut self,
        req: &RenameReq,
        _rc: contopt_isa::Reg,
        rb: contopt_isa::Reg,
        disp: i64,
        bundle: &mut Bundle,
    ) -> Renamed {
        let d = &req.d;
        if !self.cfg.enabled {
            return self.process_plain(d, RenamedClass::SimpleInt, bundle);
        }
        let vb = self.view(ArchReg::from(rb), bundle);
        let budget = self.cfg.max_serial_adds();
        let mut f = sym_add_imm(vb.sym, disp);
        let mut inherited = vb.adds;
        if inherited + f.used_add as u32 > budget {
            self.stats.chain_limited += 1;
            f = sym_add_imm(SymValue::reg(vb.map), disp);
            inherited = 0;
        }
        if f.value.known().is_none() && !self.allow_expr() {
            return self.process_plain(d, RenamedClass::SimpleInt, bundle);
        }
        let dst_arch = d.inst.dst();
        match f.value {
            SymValue::Known(v) => {
                let Some(dst_a) = dst_arch else {
                    bundle.record(None, 0, 0);
                    self.stats.executed_early += 1;
                    return self.renamed(d, RenamedClass::Done, vec![], None, false);
                };
                self.verify("early lda", d, v);
                let p = self.alloc_dst(d);
                self.rat.write(dst_a, p, SymValue::Known(v), &mut self.pregs);
                self.stats.executed_early += 1;
                bundle.record(dst_arch, inherited + 1, 0);
                let mut r = self.renamed(d, RenamedClass::Done, vec![], Some(p), true);
                r.early_value = Some(v);
                r
            }
            e @ SymValue::Expr { base, .. } => {
                let Some(dst_a) = dst_arch else {
                    bundle.record(None, 0, 0);
                    return self.renamed(d, RenamedClass::Done, vec![], None, false);
                };
                if e.is_plain_reg() {
                    // `mov` (lda 0(rb)): eliminated through reassociation.
                    self.rat.write(dst_a, base, e, &mut self.pregs);
                    self.stats.moves_eliminated += 1;
                    self.stats.executed_early += 1;
                    bundle.record(dst_arch, 0, 0);
                    return self.renamed(d, RenamedClass::Done, vec![], Some(base), false);
                }
                self.hold_srcs(&[base]);
                let p = self.alloc_dst(d);
                self.rat.write(dst_a, p, e, &mut self.pregs);
                bundle.record(dst_arch, inherited + f.used_add as u32, 0);
                self.renamed(d, RenamedClass::SimpleInt, vec![base], Some(p), true)
            }
        }
    }

    /// Resolves a memory op's address symbolically; returns
    /// `(address-symbol, inherited adds, inherited mbc accesses)`.
    fn fold_addr(&mut self, base: contopt_isa::Reg, disp: i64, bundle: &Bundle) -> (SymValue, u32, u32) {
        let vb = self.view(ArchReg::from(base), bundle);
        if !self.cfg.enabled {
            return (SymValue::reg(vb.map), 0, 0);
        }
        let f = sym_add_imm(vb.sym, disp);
        let budget = self.cfg.max_serial_adds();
        if vb.adds + f.used_add as u32 > budget {
            self.stats.chain_limited += 1;
            return (SymValue::reg(vb.map), 0, 0);
        }
        (f.value, vb.adds, vb.mbcs)
    }

    fn process_load(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        let d = &req.d;
        self.stats.mem_ops += 1;
        self.stats.loads += 1;
        let (rb, disp) = d.inst.mem_addr_spec().expect("load has address spec");
        let size = d.inst.mem_size().expect("load has size");
        let is_fp = matches!(d.inst, Inst::FLd { .. });
        let (addr_sym, inh_adds, inh_mbcs) = self.fold_addr(rb, disp, bundle);
        let addr_known = addr_sym.known();

        if let Some(a) = addr_known {
            assert_eq!(
                Some(a),
                d.eff_addr,
                "strict check: early address {a:#x} != oracle {:?} for `{}`",
                d.eff_addr,
                d.inst
            );
            self.stats.mem_addr_generated += 1;
        }

        let dst_arch = d.inst.dst();

        // RLE/SF: only with a known address, the feature enabled, and the
        // intra-bundle memory-chain budget unspent.
        if let Some(a) = addr_known {
            if self.optimizing() && self.cfg.enable_rle_sf && dst_arch.is_some() {
                let chained = inh_mbcs + 1 > self.cfg.mem_chain_depth + 1
                    || (bundle.mbc_written.iter().any(|&w| w == (a & !7))
                        && self.cfg.mem_chain_depth == 0);
                if chained {
                    self.stats.mem_chain_limited += 1;
                } else if let Some(data) = self.mbc.lookup(a, size) {
                    if let Some(r) = self.try_forward(req, a, size, data, is_fp, inh_mbcs, bundle)
                    {
                        return r;
                    }
                }
                // Miss (or rejected forward): install this load's
                // destination for future reuse.
                let p = self.alloc_dst(d);
                self.rat
                    .write(dst_arch.unwrap(), p, SymValue::reg(p), &mut self.pregs);
                self.mbc.insert(a, size, SymValue::reg(p), &mut self.pregs);
                bundle.mbc_written.push(a & !7);
                bundle.record(dst_arch, inh_adds, inh_mbcs + 1);
                let mut r = self.renamed(d, RenamedClass::Load, vec![], Some(p), true);
                r.addr_known = true;
                return r;
            }
        }

        // Ordinary load (unknown address, or RLE/SF unavailable).
        let srcs = if addr_known.is_some() {
            vec![]
        } else {
            vec![self.rat.map(ArchReg::from(rb))]
        };
        self.hold_srcs(&srcs);
        let (dst, dst_new) = match dst_arch {
            Some(a) => {
                let p = self.alloc_dst(d);
                self.rat.write(a, p, SymValue::reg(p), &mut self.pregs);
                (Some(p), true)
            }
            None => (None, false),
        };
        bundle.record(dst_arch, 0, 0);
        let mut r = self.renamed(d, RenamedClass::Load, srcs, dst, dst_new);
        r.addr_known = addr_known.is_some();
        r
    }

    /// Attempts to forward MBC `data` into the load; returns `None` (after
    /// invalidating the stale entry) if strict value checking rejects it.
    fn try_forward(
        &mut self,
        req: &RenameReq,
        addr: u64,
        size: MemSize,
        data: SymValue,
        is_fp: bool,
        inh_mbcs: u32,
        bundle: &mut Bundle,
    ) -> Option<Renamed> {
        let d = &req.d;
        let dst_a = d.inst.dst().expect("forwarding checked dst");
        // The stored register value, evaluated with the oracle.
        let stored = data.eval_with(|p| self.oracle[p.index()]);
        let loaded = extend(truncate(stored, size), size, signedness(&d.inst));
        if Some(loaded) != d.result {
            // Stale entry (speculative unknown-address store wrote this
            // location since) or a width-change mismatch: reject.
            self.stats.mbc_rejects += 1;
            self.mbc.invalidate(addr, &mut self.pregs);
            return None;
        }
        match data {
            SymValue::Known(_) => {
                // The load's value is fully known: executed in the optimizer.
                let p = self.alloc_dst(d);
                self.rat
                    .write(dst_a, p, SymValue::Known(loaded), &mut self.pregs);
                self.stats.loads_removed += 1;
                self.stats.executed_early += 1;
                bundle.record(d.inst.dst(), 1, inh_mbcs + 1);
                let mut r = self.renamed(d, RenamedClass::Done, vec![], Some(p), true);
                r.early_value = Some(loaded);
                r.load_removed = true;
                r.addr_known = true;
                Some(r)
            }
            e @ SymValue::Expr { base, .. } if e.is_plain_reg() => {
                // Pure move: the destination aliases the forwarding register.
                self.rat.write(dst_a, base, e, &mut self.pregs);
                self.stats.loads_removed += 1;
                self.stats.executed_early += 1;
                bundle.record(d.inst.dst(), 0, inh_mbcs + 1);
                let mut r = self.renamed(d, RenamedClass::Done, vec![], Some(base), false);
                r.load_removed = true;
                r.addr_known = true;
                Some(r)
            }
            e @ SymValue::Expr { base, .. } => {
                if is_fp || size != MemSize::Quad {
                    // A non-trivial integer expression cannot be forwarded
                    // into an FP register or through a width change; leave
                    // the entry and fall back to a normal (known-address)
                    // load.
                    return None;
                }
                // The load becomes the single-cycle expression
                // (base << scale) + offset: removed from the memory system.
                self.hold_srcs(&[base]);
                let p = self.alloc_dst(d);
                self.rat.write(dst_a, p, e, &mut self.pregs);
                self.stats.loads_removed += 1;
                bundle.record(d.inst.dst(), 1, inh_mbcs + 1);
                let mut r = self.renamed(d, RenamedClass::SimpleInt, vec![base], Some(p), true);
                r.load_removed = true;
                r.addr_known = true;
                Some(r)
            }
        }
    }

    fn process_store(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        let d = &req.d;
        self.stats.mem_ops += 1;
        let (rb, disp) = d.inst.mem_addr_spec().expect("store has address spec");
        let size = d.inst.mem_size().expect("store has size");
        let (addr_sym, _inh_adds, _inh_mbcs) = self.fold_addr(rb, disp, bundle);
        let addr_known = addr_sym.known();

        // Data source view.
        let data_arch = d.inst.srcs()[0].expect("store has a data source");
        let data_view = self.view(data_arch, bundle);
        let data_sym = if self.cfg.enabled && self.cfg.optimize {
            data_view.sym
        } else {
            SymValue::reg(data_view.map)
        };

        let mut srcs = Vec::new();
        if data_sym.known().is_none() {
            srcs.push(data_view.map);
        }
        if addr_known.is_none() {
            srcs.push(self.rat.map(ArchReg::from(rb)));
        }
        self.hold_srcs(&srcs);

        if let Some(a) = addr_known {
            assert_eq!(
                Some(a),
                d.eff_addr,
                "strict check: early store address {a:#x} != oracle {:?}",
                d.eff_addr
            );
            self.stats.mem_addr_generated += 1;
            if self.optimizing() && self.cfg.enable_rle_sf {
                // Store forwarding: record the data's symbolic value. Use
                // the mapping register when the symbol is a non-trivial
                // expression of the *data* register (the stored value equals
                // the register's value, which the mapping names directly).
                let recorded = match data_sym {
                    k @ SymValue::Known(_) => k,
                    e @ SymValue::Expr { .. } if e.is_plain_reg() => e,
                    _ => SymValue::reg(data_view.map),
                };
                self.mbc.insert(a, size, recorded, &mut self.pregs);
                bundle.mbc_written.push(a & !7);
            }
        } else if self.optimizing() && self.cfg.enable_rle_sf && self.cfg.flush_mbc_on_unknown_store
        {
            self.mbc.flush(&mut self.pregs);
        }

        bundle.record(None, 0, 0);
        let mut r = self.renamed(d, RenamedClass::Store, srcs, None, false);
        r.addr_known = addr_known.is_some();
        r
    }

    fn process_branch(
        &mut self,
        req: &RenameReq,
        cond: contopt_isa::Cond,
        ra: contopt_isa::Reg,
        bundle: &mut Bundle,
    ) -> Renamed {
        let d = &req.d;
        if req.mispredicted {
            self.stats.mispredicted_branches += 1;
        }
        if !self.cfg.enabled {
            bundle.record(None, 0, 0);
            let map = self.rat.map(ArchReg::from(ra));
            self.hold_srcs(&[map]);
            return self.renamed(d, RenamedClass::SimpleInt, vec![map], None, false);
        }
        let va = self.view(ArchReg::from(ra), bundle);
        let budget = self.cfg.max_serial_adds();
        let usable = va.adds <= budget;
        if let (Some(v), true) = (va.sym.known(), usable) {
            // Early branch resolution on the rename-stage ALUs.
            assert_eq!(
                cond.eval(v),
                d.taken,
                "strict check: branch `{}` resolved {} but oracle says {}",
                d.inst,
                cond.eval(v),
                d.taken
            );
            self.stats.branches_resolved_early += 1;
            self.stats.executed_early += 1;
            if req.mispredicted {
                self.stats.mispredicts_recovered_early += 1;
            }
            bundle.record(None, va.adds, 0);
            let mut r = self.renamed(d, RenamedClass::Done, vec![], None, false);
            r.resolved_early = true;
            return r;
        }
        // Unresolved: executes in the core. Branch-direction inference may
        // still reveal the register's value to younger instructions.
        let srcs = vec![va.map];
        self.hold_srcs(&srcs);
        if self.optimizing() && self.cfg.enable_branch_inference && cond.implies_zero(d.taken) {
            self.rat
                .update_sym(ArchReg::from(ra), SymValue::Known(0), &mut self.pregs);
            self.stats.branch_inferences += 1;
        }
        bundle.record(None, 0, 0);
        self.renamed(d, RenamedClass::SimpleInt, srcs, None, false)
    }

    fn process_call(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        let d = &req.d;
        let link = d.pc.wrapping_add(4);
        let dst_arch = d.inst.dst();
        match d.inst {
            Inst::Bsr { .. } => {
                if self.optimizing() {
                    // The link value is architecturally known.
                    let (dst, dst_new) = match dst_arch {
                        Some(a) => {
                            self.verify("bsr link", d, link);
                            let p = self.alloc_dst(d);
                            self.rat.write(a, p, SymValue::Known(link), &mut self.pregs);
                            (Some(p), true)
                        }
                        None => (None, false),
                    };
                    self.stats.executed_early += 1;
                    bundle.record(dst_arch, 0, 0);
                    let mut r = self.renamed(d, RenamedClass::Done, vec![], dst, dst_new);
                    r.early_value = dst.map(|_| link);
                    r
                } else {
                    self.process_plain(d, RenamedClass::SimpleInt, bundle)
                }
            }
            Inst::Jmp { ra, .. } => {
                if req.mispredicted {
                    self.stats.mispredicted_branches += 1;
                }
                if !self.cfg.enabled {
                    return self.process_plain(d, RenamedClass::SimpleInt, bundle);
                }
                let va = self.view(ArchReg::from(ra), bundle);
                let target_known = self.optimizing() && va.sym.known().is_some();
                if target_known {
                    assert_eq!(
                        va.sym.known(),
                        Some(d.next_pc),
                        "strict check: jump target mismatch"
                    );
                }
                if !target_known {
                    self.hold_srcs(&[va.map]);
                }
                let (dst, dst_new) = match dst_arch {
                    Some(a) => {
                        let p = self.alloc_dst(d);
                        let sym = if self.optimizing() {
                            SymValue::Known(link)
                        } else {
                            SymValue::reg(p)
                        };
                        self.rat.write(a, p, sym, &mut self.pregs);
                        (Some(p), true)
                    }
                    None => (None, false),
                };
                bundle.record(dst_arch, 0, 0);
                if target_known {
                    self.stats.executed_early += 1;
                    if req.mispredicted {
                        self.stats.mispredicts_recovered_early += 1;
                    }
                    let mut r = self.renamed(d, RenamedClass::Done, vec![], dst, dst_new);
                    r.resolved_early = true;
                    r.early_value = dst.map(|_| link);
                    r
                } else {
                    self.renamed(d, RenamedClass::SimpleInt, vec![va.map], dst, dst_new)
                }
            }
            _ => unreachable!("process_call on non-call"),
        }
    }

    fn process_fp(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        self.process_plain(&req.d, RenamedClass::Fp, bundle)
    }
}

fn signedness(inst: &Inst) -> bool {
    matches!(inst, Inst::Ld { signed: true, .. })
}

#[inline]
fn truncate(v: u64, size: MemSize) -> u64 {
    match size {
        MemSize::Byte => v & 0xff,
        MemSize::Word => v & 0xffff,
        MemSize::Long => v & 0xffff_ffff,
        MemSize::Quad => v,
    }
}

#[inline]
fn extend(raw: u64, size: MemSize, signed: bool) -> u64 {
    if !signed {
        return raw;
    }
    match size {
        MemSize::Byte => raw as u8 as i8 as i64 as u64,
        MemSize::Word => raw as u16 as i16 as i64 as u64,
        MemSize::Long => raw as u32 as i32 as i64 as u64,
        MemSize::Quad => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizerConfig;
    use contopt_emu::{Emulator, Step};
    use contopt_isa::{r, ArchReg, Asm};

    /// Runs a program functionally and returns its dynamic stream.
    fn stream(a: Asm) -> Vec<DynInst> {
        let mut emu = Emulator::new(a.finish().expect("assembles"));
        let mut out = Vec::new();
        loop {
            match emu.step().expect("executes") {
                Step::Inst(d) => out.push(d),
                Step::Halted => return out,
            }
        }
    }

    fn opt_default() -> Optimizer {
        Optimizer::new(OptimizerConfig::default(), 4096, |_| 0)
    }

    /// Renames one instruction per bundle (no intra-bundle limits apply),
    /// completing every new destination `lat` cycles later.
    fn rename_all(opt: &mut Optimizer, ds: &[DynInst], lat: u64) -> Vec<Renamed> {
        let mut out = Vec::new();
        for (cycle, &d) in ds.iter().enumerate() {
            let r = opt
                .rename_bundle(cycle as u64, &[RenameReq { d, mispredicted: false }])
                .remove(0);
            if let (Some(p), true) = (r.dst, r.dst_new) {
                opt.complete(p, d.result.unwrap_or(0), cycle as u64 + lat);
                opt.release(p);
            }
            for &p in &r.srcs {
                opt.release(p);
            }
            out.push(r);
        }
        out
    }

    #[test]
    fn li_and_dependent_add_execute_early() {
        let mut a = Asm::new();
        a.li(r(1), 40);
        a.addq(r(1), 2, r(2));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 1);
        assert_eq!(rs[0].class, RenamedClass::Done);
        assert_eq!(rs[0].early_value, Some(40));
        assert_eq!(rs[1].early_value, Some(42));
        assert_eq!(opt.stats().executed_early, 2);
    }

    #[test]
    fn move_elimination_aliases_the_producer() {
        let mut a = Asm::new();
        let buf = a.data_zeros(8);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 0); // unknown value
        a.mov(r(1), r(2));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 1);
        let load_dst = rs[1].dst.expect("load writes");
        assert_eq!(rs[2].class, RenamedClass::Done);
        assert!(!rs[2].dst_new, "move elimination reuses the producer");
        assert_eq!(rs[2].dst, Some(load_dst));
        assert_eq!(opt.stats().moves_eliminated, 1);
        assert_eq!(
            opt.rat_map(ArchReg::from(r(2))),
            load_dst,
            "both architectural registers name one physical register"
        );
    }

    #[test]
    fn simplified_add_depends_on_the_earlier_producer() {
        // ld -> r1; r2 = r1 + 8; r3 = r2 + 8. The second add's dependence
        // must be redirected to the *load's* register (tree-height
        // reduction), not to r2's.
        let mut a = Asm::new();
        let buf = a.data_zeros(8);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 0);
        a.addq(r(1), 8, r(2));
        a.addq(r(2), 8, r(3));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        let load_dst = rs[1].dst.unwrap();
        assert_eq!(rs[2].srcs, vec![load_dst]);
        assert_eq!(rs[3].srcs, vec![load_dst], "reassociated past r2");
        assert_eq!(
            opt.rat_sym(ArchReg::from(r(3))),
            SymValue::Expr {
                base: load_dst,
                scale: 0,
                offset: 16
            }
        );
    }

    #[test]
    fn rle_forwards_the_second_load() {
        let mut a = Asm::new();
        let buf = a.data_quads(&[99]);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 0);
        a.ldq(r(2), r(5), 0);
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert_eq!(rs[1].class, RenamedClass::Load);
        assert!(rs[1].addr_known);
        assert_eq!(rs[2].class, RenamedClass::Done, "second load removed");
        assert!(rs[2].load_removed);
        assert_eq!(rs[2].dst, rs[1].dst, "aliases the first load");
        assert_eq!(opt.stats().loads_removed, 1);
    }

    #[test]
    fn store_forward_with_known_data_executes_load_early() {
        let mut a = Asm::new();
        let buf = a.data_zeros(8);
        a.li(r(5), buf as i64);
        a.li(r(1), 1234);
        a.stq(r(1), r(5), 0);
        a.ldq(r(2), r(5), 0);
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert_eq!(rs[3].class, RenamedClass::Done);
        assert_eq!(rs[3].early_value, Some(1234));
        assert!(rs[3].load_removed);
    }

    #[test]
    fn known_address_loads_have_no_register_dependences() {
        let mut a = Asm::new();
        let buf = a.data_zeros(64);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 16);
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert!(rs[1].addr_known);
        assert!(rs[1].srcs.is_empty(), "address embedded, no agen dependence");
        assert_eq!(opt.stats().mem_addr_generated, 1);
    }

    #[test]
    fn branch_with_known_input_resolves_early() {
        let mut a = Asm::new();
        a.li(r(1), 0);
        a.beq(r(1), "target");
        a.nop();
        a.label("target");
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 1);
        assert!(rs[1].resolved_early);
        assert_eq!(rs[1].class, RenamedClass::Done);
        assert_eq!(opt.stats().branches_resolved_early, 1);
    }

    #[test]
    fn value_feedback_converts_consumers() {
        // A load's value becomes known via feedback; a later consumer of the
        // same register executes early.
        let mut a = Asm::new();
        let buf = a.data_quads(&[50]);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 0);
        for _ in 0..12 {
            a.nop(); // give the feedback time to arrive
        }
        a.addq(r(1), 1, r(2));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 3);
        let add = &rs[rs.len() - 2];
        assert_eq!(add.early_value, Some(51), "fed-back value propagates");
        assert!(opt.stats().feedback_integrations > 0);
    }

    #[test]
    fn feedback_only_mode_does_not_propagate_constants() {
        let mut a = Asm::new();
        a.li(r(1), 40);
        a.addq(r(1), 2, r(2));
        a.halt();
        let mut opt = Optimizer::new(OptimizerConfig::feedback_only(), 4096, |_| 0);
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert_eq!(rs[0].class, RenamedClass::SimpleInt, "li is not folded");
        assert_eq!(rs[1].class, RenamedClass::SimpleInt);
        assert_eq!(opt.stats().executed_early, 0);
    }

    #[test]
    fn baseline_mode_is_a_plain_renamer() {
        let mut a = Asm::new();
        a.li(r(1), 40);
        a.addq(r(1), 2, r(2));
        a.mov(r(2), r(3));
        a.halt();
        let mut opt = Optimizer::new(OptimizerConfig::baseline(), 4096, |_| 0);
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert!(rs.iter().take(3).all(|x| x.class == RenamedClass::SimpleInt));
        assert!(rs.iter().take(3).all(|x| x.dst_new));
        assert_eq!(opt.stats().executed_early, 0);
        assert_eq!(opt.stats().moves_eliminated, 0);
    }

    #[test]
    fn rename_stops_when_registers_run_out() {
        let mut a = Asm::new();
        for i in 0..40 {
            a.li(r((i % 20) as u8 + 1), i);
        }
        a.halt();
        // 64 arch registers + zero reg occupy most of an 80-register file.
        let mut opt = Optimizer::new(OptimizerConfig::baseline(), 80, |_| 0);
        let ds = stream(a);
        let reqs: Vec<RenameReq> = ds
            .iter()
            .map(|&d| RenameReq { d, mispredicted: false })
            .collect();
        let renamed = opt.rename_bundle(0, &reqs);
        assert!(renamed.len() < reqs.len(), "pool exhaustion must stop rename");
        assert!(!renamed.is_empty(), "some registers were free");
    }

    #[test]
    fn intra_bundle_chain_limit_demotes_dependents() {
        // The paper's §3.1 example: four dependent adds in one packet; only
        // the first is optimized at the default depth.
        // Seed r1 with a known constant, then issue four dependent adds in
        // a single rename packet.
        let mut c = Asm::new();
        c.li(r(1), 1);
        c.addq(r(1), 1, r(2));
        c.addq(r(2), 1, r(3));
        c.addq(r(3), 1, r(4));
        c.addq(r(4), 1, r(5));
        c.halt();
        let ds = stream(c);
        let mut opt = opt_default();
        // First bundle: li alone. Second bundle: the four adds together.
        let first = opt.rename_bundle(0, &[RenameReq { d: ds[0], mispredicted: false }]);
        assert_eq!(first[0].class, RenamedClass::Done);
        let reqs: Vec<RenameReq> = ds[1..5]
            .iter()
            .map(|&d| RenameReq { d, mispredicted: false })
            .collect();
        let adds = opt.rename_bundle(1, &reqs);
        assert_eq!(adds[0].class, RenamedClass::Done, "head of the chain folds");
        // The paper's §3.1 example: "only the first instruction is
        // reassociated". The dependents must all still execute in the core
        // (none may early-execute off a value computed this cycle). Note:
        // after demotion, later adds may still *record* symbols built from
        // statically available offset fields — that costs no serial adder —
        // but no dependent's value is computed at rename.
        assert!(
            adds[1..].iter().all(|x| x.class == RenamedClass::SimpleInt),
            "dependents are chain-limited: {:?}",
            adds.iter().map(|x| x.class).collect::<Vec<_>>()
        );
        assert!(opt.stats().chain_limited >= 1);
    }

    #[test]
    fn bsr_link_value_is_known() {
        let mut a = Asm::new();
        a.bsr(contopt_isa::Reg::RA, "f");
        a.halt();
        a.label("f");
        a.jmp(contopt_isa::Reg::R31, contopt_isa::Reg::RA);
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 1);
        assert_eq!(rs[0].class, RenamedClass::Done, "link is pc+4, known");
        // The return jump reads RA whose value is known -> resolved early.
        assert!(rs[1].resolved_early, "return target known in the optimizer");
    }

    #[test]
    fn fp_ops_are_never_optimized() {
        let mut a = Asm::new();
        let buf = a.data_f64s(&[1.5]);
        a.li(r(5), buf as i64);
        a.ldt(contopt_isa::f(1), r(5), 0);
        a.addt(contopt_isa::f(1), contopt_isa::f(1), contopt_isa::f(2));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert_eq!(rs[2].class, RenamedClass::Fp);
        assert!(!rs[2].srcs.is_empty(), "FP values are never constants");
    }

    #[test]
    fn no_references_leak_across_a_long_run() {
        let mut a = Asm::new();
        let buf = a.data_zeros(256);
        a.li(r(5), buf as i64);
        a.li(r(9), 50);
        a.label("loop");
        a.ldq(r(1), r(5), 0);
        a.addq(r(1), 1, r(1));
        a.stq(r(1), r(5), 0);
        a.mov(r(1), r(2));
        a.subq(r(9), 1, r(9));
        a.bne(r(9), "loop");
        a.halt();
        let mut opt = opt_default();
        let before = opt.pregs().live_count();
        rename_all(&mut opt, &stream(a), 2);
        opt.apply_feedback(u64::MAX); // drain in-flight feedback claims
        let after = opt.pregs().live_count();
        // Live registers: the 64 RAT mappings (+ sym bases + MBC pins),
        // bounded well below the pool size; crucially it must not grow with
        // the dynamic instruction count (50 iterations x 6 insts).
        assert!(
            after < before + 80,
            "references leak: {before} -> {after}"
        );
    }
}
