//! The rename/optimize engine driving the pluggable pass pipeline.
//!
//! [`Optimizer::rename_bundle`] processes one rename packet exactly as §3
//! of the paper describes; the per-optimization logic lives in the pass
//! modules ([`crate::passes::cp_ra`], [`crate::passes::rle_sf`],
//! [`crate::passes::early_exec`], [`crate::passes::feedback`]) and is
//! switched by the effective [`OptimizerConfig`] compiled from the
//! registered [`crate::passes::PassSet`]. This module owns the shared
//! engine state — the physical register file, the symbolic RAT, the
//! Memory Bypass Cache, the feedback queue, and the per-bundle
//! serial-dependence bookkeeping (§6.2).
//!
//! Every value the optimizer derives is checked against the functional
//! oracle (the paper's "strict expression and value checking"); a mismatch
//! in the CP/RA path is a simulator bug and panics, while a mismatch on an
//! MBC forward (a stale entry left by a speculative unknown-address store)
//! rejects the forward and invalidates the entry.

use crate::config::OptimizerConfig;
use crate::feedback::FeedbackQueue;
use crate::mbc::{Mbc, MbcStats};
use crate::preg::{PhysReg, PregFile, SrcList};
use crate::rat::SymRat;
use crate::stats::{OptStats, PassStats};
use crate::symval::SymValue;
use contopt_emu::DynInst;
use contopt_isa::{ArchReg, Inst};

/// Where a renamed instruction goes after the rename/optimize stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenamedClass {
    /// Fully handled in the optimizer (early-executed, eliminated, or
    /// resolved); it only occupies a reorder-buffer slot until retirement.
    Done,
    /// Single-cycle integer ALU (includes unresolved branches).
    SimpleInt,
    /// Multi-cycle integer (multiply).
    ComplexInt,
    /// Floating-point unit.
    Fp,
    /// Load: address generation + data-cache access.
    Load,
    /// Store: address generation; data written at retire.
    Store,
}

/// One instruction after rename/optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct Renamed {
    /// Dynamic sequence number (matches the [`DynInst`]).
    pub seq: u64,
    /// Post-optimization routing.
    pub class: RenamedClass,
    /// Physical registers this instruction must wait for before issuing.
    /// Constant-propagated operands are embedded and appear as no
    /// dependence; reassociated operands point at the *earlier* producer.
    /// A consumer reference is held on each and must be released (via
    /// [`Optimizer::release`]) when the instruction completes. Stored
    /// inline ([`SrcList`]) so rename allocates nothing per instruction.
    pub srcs: SrcList,
    /// Destination physical register, if the instruction writes one.
    pub dst: Option<PhysReg>,
    /// Whether `dst` was freshly allocated (`false` for eliminated moves and
    /// forwarded loads that alias an existing register). A producer
    /// reference is held on freshly allocated registers and must be
    /// released when the instruction completes.
    pub dst_new: bool,
    /// The value computed in the optimizer, for early-executed instructions.
    pub early_value: Option<u64>,
    /// Whether a branch was resolved at the optimization stage.
    pub resolved_early: bool,
    /// Whether a load was removed (converted to a move / expression).
    pub load_removed: bool,
    /// Whether a memory op's effective address was generated early.
    pub addr_known: bool,
}

/// A rename request: the dynamic instruction plus what the front end knows.
#[derive(Debug, Clone, Copy)]
pub struct RenameReq {
    /// The oracle record from the functional emulator.
    pub d: DynInst,
    /// Whether the front-end predictor mispredicted this (control)
    /// instruction — the pipeline learns this at fetch from the oracle.
    pub mispredicted: bool,
}

/// A source operand as the optimizer sees it: its current mapping, its
/// symbolic value, and the in-bundle serial costs behind that symbol.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SrcView {
    pub(crate) map: PhysReg,
    pub(crate) sym: SymValue,
    /// Serial rename-stage additions behind this symbol within the current
    /// bundle (0 when the producer is outside the bundle or did no ALU
    /// work).
    pub(crate) adds: u32,
    /// Serial MBC accesses behind this symbol within the current bundle.
    pub(crate) mbcs: u32,
}

/// Per-bundle serial-dependence bookkeeping (§6.2).
///
/// One instance lives in the [`Optimizer`] and is reset at the top of every
/// [`Optimizer::rename_bundle_into`], so the per-cycle rename path reuses
/// its buffers instead of reallocating them.
#[derive(Debug, Clone)]
pub(crate) struct Bundle {
    /// arch-reg index → slot that wrote it in this bundle.
    pub(crate) writer: [Option<u8>; contopt_isa::NUM_ARCH_REGS],
    pub(crate) adds: Vec<u32>,
    pub(crate) mbcs: Vec<u32>,
    /// Aligned addresses written into the MBC this bundle.
    pub(crate) mbc_written: Vec<u64>,
}

impl Default for Bundle {
    fn default() -> Bundle {
        Bundle {
            writer: [None; contopt_isa::NUM_ARCH_REGS],
            adds: Vec::new(),
            mbcs: Vec::new(),
            mbc_written: Vec::new(),
        }
    }
}

impl Bundle {
    pub(crate) fn new() -> Bundle {
        Bundle::default()
    }

    /// Empties the bundle, keeping the allocated capacity.
    pub(crate) fn reset(&mut self) {
        self.writer = [None; contopt_isa::NUM_ARCH_REGS];
        self.adds.clear();
        self.mbcs.clear();
        self.mbc_written.clear();
    }

    pub(crate) fn costs(&self, a: ArchReg) -> (u32, u32) {
        match self.writer[a.index()] {
            Some(s) => (self.adds[s as usize], self.mbcs[s as usize]),
            None => (0, 0),
        }
    }

    pub(crate) fn record(&mut self, dst: Option<ArchReg>, adds: u32, mbcs: u32) {
        let slot = self.adds.len() as u8;
        self.adds.push(adds);
        self.mbcs.push(mbcs);
        if let Some(a) = dst {
            self.writer[a.index()] = Some(slot);
        }
    }
}

/// The rename/optimize unit.
///
/// Owns the physical register file, the symbolic RAT, the Memory Bypass
/// Cache, and the value-feedback path. With [`OptimizerConfig::baseline`]
/// (an empty [`crate::passes::PassSet`]) it degrades to a plain register
/// renamer, so one unit serves both the baseline and the optimized
/// machine.
#[derive(Debug, Clone)]
pub struct Optimizer {
    pub(crate) cfg: OptimizerConfig,
    pub(crate) pregs: PregFile,
    pub(crate) rat: SymRat,
    pub(crate) mbc: Mbc,
    pub(crate) feedback: FeedbackQueue,
    /// Counters, attributed to the pass that earned them; the aggregate
    /// [`OptStats`] is derived as the sum of the blocks, never stored.
    pub(crate) stats: PassStats,
    /// Oracle architectural value of each physical register; used only for
    /// strict value checking, never to drive an optimization.
    pub(crate) oracle: Vec<u64>,
    /// Reusable per-bundle bookkeeping scratch (taken/restored around each
    /// bundle so steady-state rename performs no heap allocation).
    bundle_scratch: Bundle,
}

impl Optimizer {
    /// Creates the unit with `preg_count` physical registers and the given
    /// initial architectural register values.
    pub fn new(
        cfg: OptimizerConfig,
        preg_count: usize,
        initial: impl Fn(ArchReg) -> u64,
    ) -> Optimizer {
        let mut pregs = PregFile::new(preg_count);
        let track_known = cfg.enabled && cfg.optimize;
        let rat = SymRat::new(&mut pregs, &initial, track_known);
        let mut oracle = vec![0u64; preg_count];
        for i in 0..contopt_isa::NUM_ARCH_REGS {
            let a = ArchReg::from_index(i);
            oracle[rat.map(a).index()] = if a.is_zero() { 0 } else { initial(a) };
        }
        Optimizer {
            mbc: Mbc::new(cfg.mbc_entries),
            cfg,
            pregs,
            rat,
            feedback: FeedbackQueue::new(),
            stats: PassStats::default(),
            oracle,
            bundle_scratch: Bundle::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.cfg
    }

    /// Aggregate optimizer statistics (Table 3 counters): the sum of the
    /// per-pass blocks in [`pass_stats`](Self::pass_stats).
    pub fn stats(&self) -> OptStats {
        self.stats.total()
    }

    /// Optimizer statistics attributed to the pass unit that earned them.
    pub fn pass_stats(&self) -> PassStats {
        self.stats
    }

    /// Memory Bypass Cache statistics.
    pub fn mbc_stats(&self) -> MbcStats {
        self.mbc.stats()
    }

    /// The physical register file (for capacity/occupancy reporting).
    pub fn pregs(&self) -> &PregFile {
        &self.pregs
    }

    /// The oracle value of a live physical register.
    pub fn oracle_value(&self, p: PhysReg) -> u64 {
        self.oracle[p.index()]
    }

    /// Current RAT mapping (for tests and the retirement checker).
    pub fn rat_map(&self, a: ArchReg) -> PhysReg {
        self.rat.map(a)
    }

    /// Current RAT symbol (for tests).
    pub fn rat_sym(&self, a: ArchReg) -> SymValue {
        self.rat.sym(a)
    }

    /// Whether at least one physical register is free (rename can proceed).
    pub fn can_rename(&self) -> bool {
        self.pregs.live_count() < self.pregs.capacity()
    }

    /// Releases one reference (consumer or producer claim) on `p`.
    pub fn release(&mut self, p: PhysReg) {
        self.pregs.release(p);
    }

    /// Renames (and, when enabled, optimizes) one bundle of up to
    /// rename-width instructions. Returns the renamed instructions in
    /// order; stops short if the physical register pool is exhausted
    /// (the pipeline retries the remainder next cycle).
    pub fn rename_bundle(&mut self, now: u64, reqs: &[RenameReq]) -> Vec<Renamed> {
        let mut out = Vec::with_capacity(reqs.len());
        self.rename_bundle_into(now, reqs, &mut out);
        out
    }

    /// Allocation-free variant of [`rename_bundle`](Self::rename_bundle):
    /// appends the renamed instructions to `out` (which the caller clears
    /// and reuses across cycles) and recycles the internal per-bundle
    /// scratch, so steady-state rename performs no heap allocation.
    pub fn rename_bundle_into(&mut self, now: u64, reqs: &[RenameReq], out: &mut Vec<Renamed>) {
        self.apply_feedback(now);
        // Discrete (offline-style) optimization: invalidate the tables at
        // every trace boundary (§3.4).
        let interval = self.cfg.discrete_interval;
        if interval > 0 && self.optimizing() {
            let before = self.stats.engine.insts / interval;
            let after = (self.stats.engine.insts + reqs.len() as u64) / interval;
            if after > before {
                self.rat.invalidate_syms(&mut self.pregs);
                self.mbc.flush(&mut self.pregs);
                self.stats.engine.trace_resets += 1;
            }
        }
        let mut bundle = std::mem::take(&mut self.bundle_scratch);
        bundle.reset();
        for req in reqs {
            if !self.can_rename() {
                break;
            }
            let r = self.process(req, &mut bundle);
            out.push(r);
        }
        self.bundle_scratch = bundle;
    }

    // ---- shared engine internals ----------------------------------------

    pub(crate) fn view(&self, a: ArchReg, bundle: &Bundle) -> SrcView {
        let (adds, mbcs) = bundle.costs(a);
        SrcView {
            map: self.rat.map(a),
            sym: self.rat.sym(a),
            adds,
            mbcs,
        }
    }

    /// Downgrades a source to its plain mapping (ignoring in-bundle symbolic
    /// state) — used when the serial-addition budget is exceeded.
    pub(crate) fn plain(v: &SrcView) -> SrcView {
        SrcView {
            map: v.map,
            sym: SymValue::reg(v.map),
            adds: 0,
            mbcs: 0,
        }
    }

    pub(crate) fn optimizing(&self) -> bool {
        self.cfg.enabled && self.cfg.optimize
    }

    /// In feedback-only mode, symbolic expressions may not be derived; only
    /// fully-known results (from fed-back values and immediates) are used.
    pub(crate) fn allow_expr(&self) -> bool {
        self.optimizing() && self.cfg.enable_reassociation
    }

    /// Whether fully-known results may complete on the rename-stage ALUs
    /// (the [`crate::passes::EarlyExec`] pass is registered).
    pub(crate) fn early_exec_ok(&self) -> bool {
        self.cfg.enabled && self.cfg.enable_early_exec
    }

    pub(crate) fn verify(&self, what: &str, d: &DynInst, got: u64) {
        let want = d.result.unwrap_or_else(|| {
            panic!(
                "strict check: {what} produced a value for {} which has none",
                d.inst
            )
        });
        assert_eq!(
            got, want,
            "strict value check failed ({what}) at pc {:#x} for `{}`: optimizer {got:#x} != oracle {want:#x}",
            d.pc, d.inst
        );
    }

    #[expect(
        clippy::expect_used,
        reason = "rename gate guarantees a free physical register"
    )]
    pub(crate) fn alloc_dst(&mut self, d: &DynInst) -> PhysReg {
        let p = self.pregs.alloc().expect("caller checked can_rename");
        self.oracle[p.index()] = d.result.unwrap_or(0);
        p
    }

    /// Take consumer references on the dependence registers.
    pub(crate) fn hold_srcs(&mut self, srcs: &[PhysReg]) {
        for &p in srcs {
            self.pregs.add_ref(p);
        }
    }

    /// Builds the [`Renamed`] record. Consumer references on `srcs` must
    /// already have been taken (via [`Self::hold_srcs`]) *before* any RAT or
    /// MBC mutation that could release those registers.
    pub(crate) fn renamed(
        &mut self,
        d: &DynInst,
        class: RenamedClass,
        srcs: SrcList,
        dst: Option<PhysReg>,
        dst_new: bool,
    ) -> Renamed {
        Renamed {
            seq: d.seq,
            class,
            srcs,
            dst,
            dst_new,
            early_value: None,
            resolved_early: false,
            load_removed: false,
            addr_known: false,
        }
    }

    fn process(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        let d = &req.d;
        self.stats.engine.insts += 1;
        match d.inst {
            Inst::Alu { op, ra, rb, rc } => self.process_alu(req, op, ra, rb, rc, bundle),
            Inst::Lda { rc, rb, disp } => self.process_lda(req, rc, rb, disp, bundle),
            Inst::Ld { .. } | Inst::FLd { .. } => self.process_load(req, bundle),
            Inst::St { .. } | Inst::FSt { .. } => self.process_store(req, bundle),
            Inst::Br { cond, ra, .. } => self.process_branch(req, cond, ra, bundle),
            Inst::Bru { .. } => {
                bundle.record(None, 0, 0);
                self.renamed(d, RenamedClass::Done, SrcList::new(), None, false)
            }
            Inst::Bsr { .. } | Inst::Jmp { .. } => self.process_call(req, bundle),
            Inst::FAlu { .. } | Inst::FCmp { .. } | Inst::Itof { .. } | Inst::Ftoi { .. } => {
                self.process_fp(req, bundle)
            }
            Inst::Halt | Inst::Nop => {
                bundle.record(None, 0, 0);
                self.renamed(d, RenamedClass::Done, SrcList::new(), None, false)
            }
        }
    }

    /// Plain renaming of an instruction: map sources, allocate a fresh
    /// destination with a self-referencing symbol. Dependences on
    /// known-valued sources are still dropped (constant propagation into
    /// otherwise-unoptimizable instructions).
    pub(crate) fn process_plain(
        &mut self,
        d: &DynInst,
        class: RenamedClass,
        bundle: &mut Bundle,
    ) -> Renamed {
        let mut srcs = SrcList::new();
        for a in d.inst.srcs().into_iter().flatten() {
            let v = self.view(a, bundle);
            if v.sym.known().is_none() {
                srcs.push(v.map);
            }
        }
        self.hold_srcs(&srcs);
        let (dst, dst_new) = match d.inst.dst() {
            Some(a) => {
                let p = self.alloc_dst(d);
                self.rat.write(a, p, SymValue::reg(p), &mut self.pregs);
                (Some(p), true)
            }
            None => (None, false),
        };
        bundle.record(d.inst.dst(), 0, 0);
        self.renamed(d, class, srcs, dst, dst_new)
    }

    /// Plain renaming that additionally records a *derived* known value for
    /// the destination: used when a pass derives a constant but the
    /// EarlyExec pass is absent, so the instruction still executes in the
    /// core while younger instructions see the knowledge (verified against
    /// the oracle before it enters the RAT). `adds` is the serial
    /// rename-adder cost of the derivation, charged to the bundle so chain
    /// budgets stay honest.
    pub(crate) fn process_plain_known(
        &mut self,
        d: &DynInst,
        class: RenamedClass,
        value: u64,
        adds: u32,
        bundle: &mut Bundle,
    ) -> Renamed {
        let mut srcs = SrcList::new();
        for a in d.inst.srcs().into_iter().flatten() {
            let v = self.view(a, bundle);
            if v.sym.known().is_none() {
                srcs.push(v.map);
            }
        }
        self.hold_srcs(&srcs);
        let (dst, dst_new) = match d.inst.dst() {
            Some(a) => {
                self.verify("derived known", d, value);
                let p = self.alloc_dst(d);
                self.rat
                    .write(a, p, SymValue::Known(value), &mut self.pregs);
                (Some(p), true)
            }
            None => (None, false),
        };
        bundle.record(d.inst.dst(), adds, 0);
        self.renamed(d, class, srcs, dst, dst_new)
    }

    pub(crate) fn process_fp(&mut self, req: &RenameReq, bundle: &mut Bundle) -> Renamed {
        self.process_plain(&req.d, RenamedClass::Fp, bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizerConfig;
    use contopt_emu::{Emulator, Step};
    use contopt_isa::{r, ArchReg, Asm};

    /// Runs a program functionally and returns its dynamic stream.
    fn stream(a: Asm) -> Vec<DynInst> {
        let mut emu = Emulator::new(a.finish().expect("assembles"));
        let mut out = Vec::new();
        loop {
            match emu.step().expect("executes") {
                Step::Inst(d) => out.push(d),
                Step::Halted => return out,
            }
        }
    }

    fn opt_default() -> Optimizer {
        Optimizer::new(OptimizerConfig::default(), 4096, |_| 0)
    }

    /// Renames one instruction per bundle (no intra-bundle limits apply),
    /// completing every new destination `lat` cycles later.
    fn rename_all(opt: &mut Optimizer, ds: &[DynInst], lat: u64) -> Vec<Renamed> {
        let mut out = Vec::new();
        for (cycle, &d) in ds.iter().enumerate() {
            let r = opt
                .rename_bundle(
                    cycle as u64,
                    &[RenameReq {
                        d,
                        mispredicted: false,
                    }],
                )
                .remove(0);
            if let (Some(p), true) = (r.dst, r.dst_new) {
                opt.complete(p, d.result.unwrap_or(0), cycle as u64 + lat);
                opt.release(p);
            }
            for &p in &r.srcs {
                opt.release(p);
            }
            out.push(r);
        }
        out
    }

    #[test]
    fn li_and_dependent_add_execute_early() {
        let mut a = Asm::new();
        a.li(r(1), 40);
        a.addq(r(1), 2, r(2));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 1);
        assert_eq!(rs[0].class, RenamedClass::Done);
        assert_eq!(rs[0].early_value, Some(40));
        assert_eq!(rs[1].early_value, Some(42));
        assert_eq!(opt.stats().executed_early, 2);
    }

    #[test]
    fn move_elimination_aliases_the_producer() {
        let mut a = Asm::new();
        let buf = a.data_zeros(8);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 0); // unknown value
        a.mov(r(1), r(2));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 1);
        let load_dst = rs[1].dst.expect("load writes");
        assert_eq!(rs[2].class, RenamedClass::Done);
        assert!(!rs[2].dst_new, "move elimination reuses the producer");
        assert_eq!(rs[2].dst, Some(load_dst));
        assert_eq!(opt.stats().moves_eliminated, 1);
        assert_eq!(
            opt.rat_map(ArchReg::from(r(2))),
            load_dst,
            "both architectural registers name one physical register"
        );
    }

    #[test]
    fn simplified_add_depends_on_the_earlier_producer() {
        // ld -> r1; r2 = r1 + 8; r3 = r2 + 8. The second add's dependence
        // must be redirected to the *load's* register (tree-height
        // reduction), not to r2's.
        let mut a = Asm::new();
        let buf = a.data_zeros(8);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 0);
        a.addq(r(1), 8, r(2));
        a.addq(r(2), 8, r(3));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        let load_dst = rs[1].dst.unwrap();
        assert_eq!(rs[2].srcs.as_slice(), &[load_dst]);
        assert_eq!(rs[3].srcs.as_slice(), &[load_dst], "reassociated past r2");
        assert_eq!(
            opt.rat_sym(ArchReg::from(r(3))),
            SymValue::Expr {
                base: load_dst,
                scale: 0,
                offset: 16
            }
        );
    }

    #[test]
    fn rle_forwards_the_second_load() {
        let mut a = Asm::new();
        let buf = a.data_quads(&[99]);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 0);
        a.ldq(r(2), r(5), 0);
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert_eq!(rs[1].class, RenamedClass::Load);
        assert!(rs[1].addr_known);
        assert_eq!(rs[2].class, RenamedClass::Done, "second load removed");
        assert!(rs[2].load_removed);
        assert_eq!(rs[2].dst, rs[1].dst, "aliases the first load");
        assert_eq!(opt.stats().loads_removed, 1);
    }

    #[test]
    fn store_forward_with_known_data_executes_load_early() {
        let mut a = Asm::new();
        let buf = a.data_zeros(8);
        a.li(r(5), buf as i64);
        a.li(r(1), 1234);
        a.stq(r(1), r(5), 0);
        a.ldq(r(2), r(5), 0);
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert_eq!(rs[3].class, RenamedClass::Done);
        assert_eq!(rs[3].early_value, Some(1234));
        assert!(rs[3].load_removed);
    }

    #[test]
    fn known_address_loads_have_no_register_dependences() {
        let mut a = Asm::new();
        let buf = a.data_zeros(64);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 16);
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert!(rs[1].addr_known);
        assert!(
            rs[1].srcs.is_empty(),
            "address embedded, no agen dependence"
        );
        assert_eq!(opt.stats().mem_addr_generated, 1);
    }

    #[test]
    fn branch_with_known_input_resolves_early() {
        let mut a = Asm::new();
        a.li(r(1), 0);
        a.beq(r(1), "target");
        a.nop();
        a.label("target");
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 1);
        assert!(rs[1].resolved_early);
        assert_eq!(rs[1].class, RenamedClass::Done);
        assert_eq!(opt.stats().branches_resolved_early, 1);
    }

    #[test]
    fn value_feedback_converts_consumers() {
        // A load's value becomes known via feedback; a later consumer of the
        // same register executes early.
        let mut a = Asm::new();
        let buf = a.data_quads(&[50]);
        a.li(r(5), buf as i64);
        a.ldq(r(1), r(5), 0);
        for _ in 0..12 {
            a.nop(); // give the feedback time to arrive
        }
        a.addq(r(1), 1, r(2));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 3);
        let add = &rs[rs.len() - 2];
        assert_eq!(add.early_value, Some(51), "fed-back value propagates");
        assert!(opt.stats().feedback_integrations > 0);
    }

    #[test]
    fn feedback_only_mode_does_not_propagate_constants() {
        let mut a = Asm::new();
        a.li(r(1), 40);
        a.addq(r(1), 2, r(2));
        a.halt();
        let mut opt = Optimizer::new(OptimizerConfig::feedback_only(), 4096, |_| 0);
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert_eq!(rs[0].class, RenamedClass::SimpleInt, "li is not folded");
        assert_eq!(rs[1].class, RenamedClass::SimpleInt);
        assert_eq!(opt.stats().executed_early, 0);
    }

    #[test]
    fn baseline_mode_is_a_plain_renamer() {
        let mut a = Asm::new();
        a.li(r(1), 40);
        a.addq(r(1), 2, r(2));
        a.mov(r(2), r(3));
        a.halt();
        let mut opt = Optimizer::new(OptimizerConfig::baseline(), 4096, |_| 0);
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert!(rs
            .iter()
            .take(3)
            .all(|x| x.class == RenamedClass::SimpleInt));
        assert!(rs.iter().take(3).all(|x| x.dst_new));
        assert_eq!(opt.stats().executed_early, 0);
        assert_eq!(opt.stats().moves_eliminated, 0);
    }

    #[test]
    fn early_exec_pass_gates_rename_stage_completion() {
        // With every pass but EarlyExec registered, the optimizer still
        // derives symbols and generates addresses, but no instruction
        // completes at rename: no early ALU results, no early branch
        // resolution, no move elimination, and no MBC load forwarding.
        use crate::passes::{Pass, PassSet};
        let cfg: OptimizerConfig = [Pass::cp_ra(), Pass::rle_sf(), Pass::value_feedback()]
            .into_iter()
            .collect::<PassSet>()
            .into();
        assert!(!cfg.enable_early_exec);
        let mut a = Asm::new();
        let buf = a.data_zeros(16);
        a.li(r(1), 40);
        a.addq(r(1), 2, r(2));
        a.mov(r(2), r(4)); // move elimination candidate
        a.li(r(5), buf as i64);
        for _ in 0..4 {
            a.nop(); // let value feedback convert r5 to a known constant
        }
        a.stq(r(2), r(5), 0); // store-forwarding candidate...
        a.ldq(r(6), r(5), 0); // ...reloaded immediately
        a.ldq(r(7), r(5), 0); // and a redundant reload
        a.li(r(3), 0);
        a.beq(r(3), "t");
        a.nop();
        a.label("t");
        a.halt();
        let mut opt = Optimizer::new(cfg, 4096, |_| 0);
        let rs = rename_all(&mut opt, &stream(a), 1);
        let s = opt.stats();
        assert_eq!(s.executed_early, 0, "nothing completes early");
        assert_eq!(s.branches_resolved_early, 0);
        assert_eq!(s.loads_removed, 0, "forwarding requires EarlyExec");
        assert_eq!(s.moves_eliminated, 0, "move elim requires EarlyExec");
        assert!(
            s.mem_addr_generated > 0,
            "fed-back knowledge still generates addresses"
        );
        assert!(rs.iter().all(|x| x.early_value.is_none()));
        assert!(rs.iter().all(|x| !x.resolved_early && !x.load_removed));
        // Every instruction with architectural work went to the core; only
        // the inherently no-op nops and halt may bypass it (the branch is
        // taken, so the trailing nop never executes).
        let done = rs.iter().filter(|x| x.class == RenamedClass::Done).count();
        assert_eq!(done, 5, "only the four nops and halt bypass the core");
    }

    #[test]
    fn rename_stops_when_registers_run_out() {
        let mut a = Asm::new();
        for i in 0..40 {
            a.li(r((i % 20) as u8 + 1), i);
        }
        a.halt();
        // 64 arch registers + zero reg occupy most of an 80-register file.
        let mut opt = Optimizer::new(OptimizerConfig::baseline(), 80, |_| 0);
        let ds = stream(a);
        let reqs: Vec<RenameReq> = ds
            .iter()
            .map(|&d| RenameReq {
                d,
                mispredicted: false,
            })
            .collect();
        let renamed = opt.rename_bundle(0, &reqs);
        assert!(
            renamed.len() < reqs.len(),
            "pool exhaustion must stop rename"
        );
        assert!(!renamed.is_empty(), "some registers were free");
    }

    #[test]
    fn intra_bundle_chain_limit_demotes_dependents() {
        // The paper's §3.1 example: four dependent adds in one packet; only
        // the first is optimized at the default depth.
        // Seed r1 with a known constant, then issue four dependent adds in
        // a single rename packet.
        let mut c = Asm::new();
        c.li(r(1), 1);
        c.addq(r(1), 1, r(2));
        c.addq(r(2), 1, r(3));
        c.addq(r(3), 1, r(4));
        c.addq(r(4), 1, r(5));
        c.halt();
        let ds = stream(c);
        let mut opt = opt_default();
        // First bundle: li alone. Second bundle: the four adds together.
        let first = opt.rename_bundle(
            0,
            &[RenameReq {
                d: ds[0],
                mispredicted: false,
            }],
        );
        assert_eq!(first[0].class, RenamedClass::Done);
        let reqs: Vec<RenameReq> = ds[1..5]
            .iter()
            .map(|&d| RenameReq {
                d,
                mispredicted: false,
            })
            .collect();
        let adds = opt.rename_bundle(1, &reqs);
        assert_eq!(adds[0].class, RenamedClass::Done, "head of the chain folds");
        // The paper's §3.1 example: "only the first instruction is
        // reassociated". The dependents must all still execute in the core
        // (none may early-execute off a value computed this cycle). Note:
        // after demotion, later adds may still *record* symbols built from
        // statically available offset fields — that costs no serial adder —
        // but no dependent's value is computed at rename.
        assert!(
            adds[1..].iter().all(|x| x.class == RenamedClass::SimpleInt),
            "dependents are chain-limited: {:?}",
            adds.iter().map(|x| x.class).collect::<Vec<_>>()
        );
        assert!(opt.stats().chain_limited >= 1);
    }

    #[test]
    fn bsr_link_value_is_known() {
        let mut a = Asm::new();
        a.bsr(contopt_isa::Reg::RA, "f");
        a.halt();
        a.label("f");
        a.jmp(contopt_isa::Reg::R31, contopt_isa::Reg::RA);
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 1);
        assert_eq!(rs[0].class, RenamedClass::Done, "link is pc+4, known");
        // The return jump reads RA whose value is known -> resolved early.
        assert!(rs[1].resolved_early, "return target known in the optimizer");
    }

    #[test]
    fn fp_ops_are_never_optimized() {
        let mut a = Asm::new();
        let buf = a.data_f64s(&[1.5]);
        a.li(r(5), buf as i64);
        a.ldt(contopt_isa::f(1), r(5), 0);
        a.addt(contopt_isa::f(1), contopt_isa::f(1), contopt_isa::f(2));
        a.halt();
        let mut opt = opt_default();
        let rs = rename_all(&mut opt, &stream(a), 100);
        assert_eq!(rs[2].class, RenamedClass::Fp);
        assert!(!rs[2].srcs.is_empty(), "FP values are never constants");
    }

    #[test]
    fn no_references_leak_across_a_long_run() {
        let mut a = Asm::new();
        let buf = a.data_zeros(256);
        a.li(r(5), buf as i64);
        a.li(r(9), 50);
        a.label("loop");
        a.ldq(r(1), r(5), 0);
        a.addq(r(1), 1, r(1));
        a.stq(r(1), r(5), 0);
        a.mov(r(1), r(2));
        a.subq(r(9), 1, r(9));
        a.bne(r(9), "loop");
        a.halt();
        let mut opt = opt_default();
        let before = opt.pregs().live_count();
        rename_all(&mut opt, &stream(a), 2);
        opt.apply_feedback(u64::MAX); // drain in-flight feedback claims
        let after = opt.pregs().live_count();
        // Live registers: the 64 RAT mappings (+ sym bases + MBC pins),
        // bounded well below the pool size; crucially it must not grow with
        // the dynamic instruction count (50 iterations x 6 insts).
        assert!(after < before + 80, "references leak: {before} -> {after}");
    }
}
