//! Sparse byte-addressable memory image.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// A sparse, demand-allocated, zero-filled memory image.
///
/// Pages are 4 KiB and materialize on first write; reads of unmapped memory
/// return zero, which is safe for the self-contained synthetic workloads this
/// simulator runs (there is no OS to leak data from).
///
/// # Examples
///
/// ```
/// use contopt_emu::MemImage;
/// let mut m = MemImage::new();
/// m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u32(0x1004), 0xdead_beef);
/// assert_eq!(m.read_u8(0x9999), 0, "unmapped reads as zero");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u8]>>,
}

impl MemImage {
    /// Creates an empty image.
    pub fn new() -> MemImage {
        MemImage::default()
    }

    /// Number of materialized 4 KiB pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|p| p.as_ref())
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut Box<[u8]> {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = v;
    }

    /// Reads `n <= 8` little-endian bytes into the low bits of a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn read_le(&self, addr: u64, n: u64) -> u64 {
        assert!(n <= 8, "read of {n} bytes");
        // Fast path: whole access within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + n as usize <= PAGE_SIZE as usize {
            if let Some(p) = self.page(addr) {
                let mut buf = [0u8; 8];
                buf[..n as usize].copy_from_slice(&p[off..off + n as usize]);
                return u64::from_le_bytes(buf);
            }
            return 0;
        }
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `v`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn write_le(&mut self, addr: u64, v: u64, n: u64) {
        assert!(n <= 8, "write of {n} bytes");
        let off = (addr & PAGE_MASK) as usize;
        if off + n as usize <= PAGE_SIZE as usize {
            let bytes = v.to_le_bytes();
            let p = self.page_mut(addr);
            p[off..off + n as usize].copy_from_slice(&bytes[..n as usize]);
            return;
        }
        for i in 0..n {
            self.write_u8(addr + i, (v >> (8 * i)) as u8);
        }
    }

    /// Reads a `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.read_le(addr, 2) as u16
    }
    /// Reads a `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_le(addr, 4) as u32
    }
    /// Reads a `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }
    /// Reads an `f64`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }
    /// Writes a `u16`.
    pub fn write_u16(&mut self, addr: u64, v: u16) {
        self.write_le(addr, v as u64, 2);
    }
    /// Writes a `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_le(addr, v as u64, 4);
    }
    /// Writes a `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_le(addr, v, 8);
    }
    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Copies a byte slice into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// An order-independent FNV-1a digest of the image's *content*.
    ///
    /// Two images read identically at every address iff their digests
    /// match (up to hash collision): all-zero pages hash like unmapped
    /// ones, so a page that was materialized but only ever held zeros
    /// does not distinguish the images. This is what differential tests
    /// compare — two executions that allocate pages in different orders,
    /// or one of which writes an explicit zero, are architecturally equal.
    pub fn content_digest(&self) -> u64 {
        let mut digest = 0u64;
        for (&pno, page) in &self.pages {
            if page.iter().all(|&b| b == 0) {
                continue;
            }
            // FNV-1a over (page number, page bytes); pages are combined
            // with XOR so HashMap iteration order cannot matter.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut eat = |b: u8| {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            };
            for b in pno.to_le_bytes() {
                eat(b);
            }
            for &b in page.iter() {
                eat(b);
            }
            digest ^= h;
        }
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = MemImage::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MemImage::new();
        let addr = PAGE_SIZE - 3; // spans two pages
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn partial_widths() {
        let mut m = MemImage::new();
        m.write_u64(0x100, u64::MAX);
        m.write_u16(0x102, 0xABCD);
        assert_eq!(m.read_u64(0x100), 0xFFFF_FFFF_ABCD_FFFF);
        assert_eq!(m.read_u32(0x100), 0xABCD_FFFF);
        assert_eq!(m.read_u16(0x102), 0xABCD);
        assert_eq!(m.read_u8(0x103), 0xAB);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = MemImage::new();
        m.write_f64(0x2000, -1234.5e-6);
        assert_eq!(m.read_f64(0x2000), -1234.5e-6);
    }

    #[test]
    fn content_digest_ignores_mapping_history() {
        let empty = MemImage::new();
        let mut zeroed = MemImage::new();
        zeroed.write_u64(0x5000, 0); // materializes a page of zeros
        assert_eq!(empty.content_digest(), zeroed.content_digest());

        let mut a = MemImage::new();
        let mut b = MemImage::new();
        a.write_u64(0x1000, 7);
        a.write_u64(0x9000, 9);
        b.write_u64(0x9000, 9); // reverse allocation order
        b.write_u64(0x1000, 7);
        assert_eq!(a.content_digest(), b.content_digest());
        b.write_u8(0x1000, 8);
        assert_ne!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = MemImage::new();
        m.write_bytes(0x3000, &[1, 2, 3, 4]);
        assert_eq!(m.read_u32(0x3000), 0x0403_0201);
    }
}
