//! The functional interpreter.

use crate::dyninst::DynInst;
use crate::mem_image::MemImage;
use contopt_isa::{Inst, MemSize, Operand, Program, Reg, STACK_TOP};
use std::fmt;
use std::sync::Arc;

/// Error conditions the emulator can hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The PC left the code segment (wild jump or fall-off-the-end).
    UnmappedPc(u64),
    /// The dynamic instruction budget was exhausted before `halt`.
    InstLimitExceeded(u64),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::UnmappedPc(pc) => write!(f, "pc {pc:#x} is outside the code segment"),
            EmuError::InstLimitExceeded(n) => {
                write!(f, "instruction limit of {n} exceeded before halt")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// Result of a single [`Emulator::step`].
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// One instruction committed.
    Inst(DynInst),
    /// The machine has halted; no further instructions will be produced.
    Halted,
}

/// Summary statistics from running a program to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// Committed dynamic instructions (including the final `halt`).
    pub insts: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
}

/// The functional emulator: architectural state plus sparse memory.
///
/// # Examples
///
/// ```
/// use contopt_isa::{Asm, r};
/// use contopt_emu::Emulator;
///
/// let mut a = Asm::new();
/// a.li(r(1), 40);
/// a.addq(r(1), 2, r(1));
/// a.halt();
/// let mut emu = Emulator::new(a.finish()?);
/// emu.run_to_halt(100)?;
/// assert_eq!(emu.reg(r(1)), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    program: Arc<Program>,
    mem: MemImage,
    iregs: [u64; 32],
    fregs: [f64; 32],
    pc: u64,
    seq: u64,
    halted: bool,
}

impl Emulator {
    /// Creates an emulator with the program's data segments loaded and the
    /// stack pointer initialized to [`STACK_TOP`].
    ///
    /// Accepts either an owned [`Program`] or a shared `Arc<Program>`; the
    /// program is immutable, so concurrent emulators can share one image.
    pub fn new(program: impl Into<Arc<Program>>) -> Emulator {
        let program = program.into();
        let mut mem = MemImage::new();
        for (addr, bytes) in &program.data {
            mem.write_bytes(*addr, bytes);
        }
        let mut iregs = [0u64; 32];
        iregs[Reg::SP.index()] = STACK_TOP;
        Emulator {
            pc: program.entry,
            program,
            mem,
            iregs,
            fregs: [0.0; 32],
            seq: 0,
            halted: false,
        }
    }

    /// The current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether the machine has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions committed so far.
    pub fn inst_count(&self) -> u64 {
        self.seq
    }

    /// Reads an integer register (r31 reads as zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.iregs[r.index()]
        }
    }

    /// Reads a floating-point register (f31 reads as zero).
    #[inline]
    pub fn freg(&self, f: contopt_isa::FReg) -> f64 {
        if f.is_zero() {
            0.0
        } else {
            self.fregs[f.index()]
        }
    }

    /// Read-only view of memory (useful in tests to inspect results).
    pub fn mem(&self) -> &MemImage {
        &self.mem
    }

    /// Mutable access to memory (useful to poke inputs before running).
    pub fn mem_mut(&mut self) -> &mut MemImage {
        &mut self.mem
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    #[inline]
    fn write_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.iregs[r.index()] = v;
        }
    }

    #[inline]
    fn write_freg(&mut self, f: contopt_isa::FReg, v: f64) {
        if !f.is_zero() {
            self.fregs[f.index()] = v;
        }
    }

    #[inline]
    fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v as u64,
        }
    }

    /// Executes one instruction and returns its [`DynInst`] record.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::UnmappedPc`] if the PC leaves the code segment.
    pub fn step(&mut self) -> Result<Step, EmuError> {
        if self.halted {
            return Ok(Step::Halted);
        }
        let pc = self.pc;
        let inst = *self.program.inst_at(pc).ok_or(EmuError::UnmappedPc(pc))?;

        let mut result: Option<u64> = None;
        let mut eff_addr: Option<u64> = None;
        let mut store_value: Option<u64> = None;
        let mut taken = false;
        let mut next_pc = pc.wrapping_add(4);

        match inst {
            Inst::Alu { op, ra, rb, rc } => {
                let v = op.eval(self.reg(ra), self.operand(rb));
                self.write_reg(rc, v);
                result = Some(v);
            }
            Inst::Lda { rc, rb, disp } => {
                let v = self.reg(rb).wrapping_add(disp as u64);
                self.write_reg(rc, v);
                result = Some(v);
            }
            Inst::Ld {
                size,
                signed,
                rc,
                rb,
                disp,
            } => {
                let addr = self.reg(rb).wrapping_add(disp as u64);
                let raw = self.mem.read_le(addr, size.bytes());
                let v = extend(raw, size, signed);
                self.write_reg(rc, v);
                result = Some(v);
                eff_addr = Some(addr);
            }
            Inst::St { size, ra, rb, disp } => {
                let addr = self.reg(rb).wrapping_add(disp as u64);
                let v = self.reg(ra);
                self.mem.write_le(addr, v, size.bytes());
                eff_addr = Some(addr);
                store_value = Some(truncate(v, size));
            }
            Inst::FLd { fc, rb, disp } => {
                let addr = self.reg(rb).wrapping_add(disp as u64);
                let bits = self.mem.read_u64(addr);
                self.write_freg(fc, f64::from_bits(bits));
                result = Some(bits);
                eff_addr = Some(addr);
            }
            Inst::FSt { fa, rb, disp } => {
                let addr = self.reg(rb).wrapping_add(disp as u64);
                let bits = self.freg(fa).to_bits();
                self.mem.write_u64(addr, bits);
                eff_addr = Some(addr);
                store_value = Some(bits);
            }
            Inst::FAlu { op, fa, fb, fc } => {
                let v = op.eval(self.freg(fa), self.freg(fb));
                self.write_freg(fc, v);
                result = Some(v.to_bits());
            }
            Inst::FCmp { op, fa, fb, rc } => {
                let v = op.eval(self.freg(fa), self.freg(fb));
                self.write_reg(rc, v);
                result = Some(v);
            }
            Inst::Itof { ra, fc } => {
                let v = self.reg(ra) as i64 as f64;
                self.write_freg(fc, v);
                result = Some(v.to_bits());
            }
            Inst::Ftoi { fa, rc } => {
                let v = self.freg(fa) as i64 as u64;
                self.write_reg(rc, v);
                result = Some(v);
            }
            Inst::Br { cond, ra, target } => {
                taken = cond.eval(self.reg(ra));
                if taken {
                    next_pc = target;
                }
            }
            Inst::Bru { target } => {
                taken = true;
                next_pc = target;
            }
            Inst::Bsr { rd, target } => {
                let link = pc.wrapping_add(4);
                self.write_reg(rd, link);
                result = Some(link);
                taken = true;
                next_pc = target;
            }
            Inst::Jmp { rd, ra } => {
                let link = pc.wrapping_add(4);
                let target = self.reg(ra);
                self.write_reg(rd, link);
                result = Some(link);
                taken = true;
                next_pc = target;
            }
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Inst::Nop => {}
        }

        // Writes to hardwired-zero registers produce no architectural result.
        if inst.dst().is_none() && !matches!(inst, Inst::St { .. } | Inst::FSt { .. }) {
            if !inst.is_control() {
                result = None;
            } else if !matches!(inst, Inst::Br { .. } | Inst::Bru { .. }) {
                // bsr/jmp to r31: link value discarded
                if let Inst::Bsr { rd, .. } | Inst::Jmp { rd, .. } = inst {
                    if rd.is_zero() {
                        result = None;
                    }
                }
            }
        }

        let d = DynInst {
            seq: self.seq,
            pc,
            inst,
            result,
            eff_addr,
            store_value,
            taken,
            next_pc,
        };
        self.seq += 1;
        self.pc = next_pc;
        Ok(Step::Inst(d))
    }

    /// Runs until `halt`, with a dynamic instruction budget.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::InstLimitExceeded`] if the program does not halt
    /// within `max_insts` instructions, or propagates [`EmuError::UnmappedPc`].
    pub fn run_to_halt(&mut self, max_insts: u64) -> Result<RunSummary, EmuError> {
        let mut summary = RunSummary::default();
        loop {
            if summary.insts >= max_insts {
                return Err(EmuError::InstLimitExceeded(max_insts));
            }
            match self.step()? {
                Step::Halted => return Ok(summary),
                Step::Inst(d) => {
                    summary.insts += 1;
                    if d.inst.is_cond_branch() {
                        summary.cond_branches += 1;
                    }
                    if d.inst.is_load() {
                        summary.loads += 1;
                    }
                    if d.inst.is_store() {
                        summary.stores += 1;
                    }
                }
            }
        }
    }
}

#[inline]
fn extend(raw: u64, size: MemSize, signed: bool) -> u64 {
    if !signed {
        return raw;
    }
    match size {
        MemSize::Byte => raw as u8 as i8 as i64 as u64,
        MemSize::Word => raw as u16 as i16 as i64 as u64,
        MemSize::Long => raw as u32 as i32 as i64 as u64,
        MemSize::Quad => raw,
    }
}

#[inline]
fn truncate(v: u64, size: MemSize) -> u64 {
    match size {
        MemSize::Byte => v & 0xff,
        MemSize::Word => v & 0xffff,
        MemSize::Long => v & 0xffff_ffff,
        MemSize::Quad => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contopt_isa::{f, r, Asm};

    fn run(a: Asm) -> Emulator {
        let mut emu = Emulator::new(a.finish().unwrap());
        emu.run_to_halt(1_000_000).unwrap();
        emu
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut a = Asm::new();
        a.li(r(1), 10);
        a.li(r(2), 32);
        a.addq(r(1), r(2), r(3));
        a.halt();
        let emu = run(a);
        assert_eq!(emu.reg(r(3)), 42);
        assert!(emu.halted());
        assert_eq!(emu.inst_count(), 4);
    }

    #[test]
    fn loop_sums_array() {
        let mut a = Asm::new();
        let arr = a.data_quads(&[10, 20, 30, 40, 50]);
        a.li(r(1), arr as i64);
        a.li(r(2), 5);
        a.li(r(3), 0);
        a.label("loop");
        a.ldq(r(4), r(1), 0);
        a.addq(r(3), r(4), r(3));
        a.lda(r(1), r(1), 8);
        a.subq(r(2), 1, r(2));
        a.bne(r(2), "loop");
        a.halt();
        let emu = run(a);
        assert_eq!(emu.reg(r(3)), 150);
    }

    #[test]
    fn stores_visible_in_memory() {
        let mut a = Asm::new();
        let buf = a.data_zeros(32);
        a.li(r(1), buf as i64);
        a.li(r(2), 0x1234_5678_9abc_def0u64 as i64);
        a.stq(r(2), r(1), 0);
        a.stl(r(2), r(1), 8);
        a.stw(r(2), r(1), 16);
        a.stb(r(2), r(1), 24);
        a.halt();
        let emu = run(a);
        assert_eq!(emu.mem().read_u64(buf), 0x1234_5678_9abc_def0);
        assert_eq!(emu.mem().read_u64(buf + 8), 0x9abc_def0);
        assert_eq!(emu.mem().read_u64(buf + 16), 0xdef0);
        assert_eq!(emu.mem().read_u64(buf + 24), 0xf0);
    }

    #[test]
    fn signed_load_extension() {
        let mut a = Asm::new();
        let d = a.data_longs(&[0xffff_fffe]);
        a.li(r(1), d as i64);
        a.ldls(r(2), r(1), 0);
        a.ldl(r(3), r(1), 0);
        a.halt();
        let emu = run(a);
        assert_eq!(emu.reg(r(2)) as i64, -2);
        assert_eq!(emu.reg(r(3)), 0xffff_fffe);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        a.li(r(1), 5);
        a.bsr(Reg::RA, "double");
        a.addq(r(1), 1, r(1)); // after return: 10 + 1
        a.halt();
        a.label("double");
        a.addq(r(1), r(1), r(1));
        a.ret();
        let emu = run(a);
        assert_eq!(emu.reg(r(1)), 11);
    }

    #[test]
    fn fp_pipeline() {
        let mut a = Asm::new();
        let d = a.data_f64s(&[1.5, 2.5]);
        let out = a.data_zeros(8);
        a.li(r(1), d as i64);
        a.li(r(2), out as i64);
        a.ldt(f(1), r(1), 0);
        a.ldt(f(2), r(1), 8);
        a.mult(f(1), f(2), f(3));
        a.stt(f(3), r(2), 0);
        a.cmptlt(f(1), f(2), r(3));
        a.halt();
        let emu = run(a);
        assert_eq!(emu.mem().read_f64(out), 3.75);
        assert_eq!(emu.reg(r(3)), 1);
    }

    #[test]
    fn conversions() {
        let mut a = Asm::new();
        a.li(r(1), -7);
        a.itof(r(1), f(1));
        a.ftoi(f(1), r(2));
        a.halt();
        let emu = run(a);
        assert_eq!(emu.reg(r(2)) as i64, -7);
        assert_eq!(emu.freg(f(1)), -7.0);
    }

    #[test]
    fn zero_register_writes_discarded() {
        let mut a = Asm::new();
        a.li(Reg::R31, 99);
        a.addq(Reg::R31, 1, r(1));
        a.halt();
        let emu = run(a);
        assert_eq!(emu.reg(Reg::R31), 0);
        assert_eq!(emu.reg(r(1)), 1);
    }

    #[test]
    fn branch_outcomes_recorded() {
        let mut a = Asm::new();
        a.li(r(1), 0);
        a.beq(r(1), "skip");
        a.li(r(2), 111); // not executed
        a.label("skip");
        a.halt();
        let mut emu = Emulator::new(a.finish().unwrap());
        let mut recs = Vec::new();
        while let Step::Inst(d) = emu.step().unwrap() {
            recs.push(d);
        }
        assert_eq!(recs.len(), 3); // li, beq, halt
        let br = &recs[1];
        assert!(br.taken);
        assert!(br.redirects());
        assert_eq!(br.next_pc, recs[2].pc);
        assert_eq!(emu.reg(r(2)), 0);
    }

    #[test]
    fn wild_jump_is_error() {
        let mut a = Asm::new();
        a.li(r(1), 0x7777_7770);
        a.jmp(Reg::R31, r(1));
        let mut emu = Emulator::new(a.finish().unwrap());
        emu.step().unwrap();
        emu.step().unwrap();
        assert!(matches!(emu.step(), Err(EmuError::UnmappedPc(_))));
    }

    #[test]
    fn inst_limit_enforced() {
        let mut a = Asm::new();
        a.label("forever");
        a.br("forever");
        let mut emu = Emulator::new(a.finish().unwrap());
        assert_eq!(
            emu.run_to_halt(10).unwrap_err(),
            EmuError::InstLimitExceeded(10)
        );
    }

    #[test]
    fn run_summary_counts() {
        let mut a = Asm::new();
        let arr = a.data_quads(&[1, 2]);
        let out = a.data_zeros(8);
        a.li(r(1), arr as i64);
        a.li(r(5), out as i64);
        a.li(r(2), 2);
        a.li(r(3), 0);
        a.label("loop");
        a.ldq(r(4), r(1), 0);
        a.addq(r(3), r(4), r(3));
        a.lda(r(1), r(1), 8);
        a.subq(r(2), 1, r(2));
        a.bne(r(2), "loop");
        a.stq(r(3), r(5), 0);
        a.halt();
        let mut emu = Emulator::new(a.finish().unwrap());
        let s = emu.run_to_halt(1000).unwrap();
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.cond_branches, 2);
        assert_eq!(emu.mem().read_u64(out), 3);
    }
}
