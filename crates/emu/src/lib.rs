//! # contopt-emu — the functional emulator
//!
//! Interprets [`contopt_isa`] programs over a sparse memory image, producing
//! the committed dynamic instruction stream with *oracle* values
//! ([`DynInst`]). The cycle-level timing model replays this stream, and the
//! continuous optimizer checks every value it derives against it (the
//! paper's "strict expression and value checking").
//!
//! This crate plays the role SimpleScalar 3.0's functional core plays in the
//! paper's infrastructure (§4.2).
//!
//! # Examples
//!
//! ```
//! use contopt_isa::{Asm, r};
//! use contopt_emu::{Emulator, Step};
//!
//! let mut a = Asm::new();
//! a.li(r(1), 2);
//! a.addq(r(1), r(1), r(2));
//! a.halt();
//! let mut emu = Emulator::new(a.finish()?);
//! while let Step::Inst(d) = emu.step()? {
//!     println!("{:>4}  {}", d.seq, d.inst);
//! }
//! assert_eq!(emu.reg(r(2)), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dyninst;
mod machine;
mod mem_image;
mod snapshot;

pub use dyninst::{DynInst, STREAM_DIGEST_INIT};
pub use machine::{EmuError, Emulator, RunSummary, Step};
pub use mem_image::MemImage;
pub use snapshot::ArchSnapshot;
