//! The dynamic-instruction record produced by the functional emulator.

use contopt_isa::Inst;

/// One committed dynamic instruction, with its *oracle* values.
///
/// The timing model replays these records cycle-by-cycle; the continuous
/// optimizer uses them for strict value checking (every value the optimizer
/// derives must equal the architectural value recorded here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Position in the committed dynamic stream (0-based).
    pub seq: u64,
    /// The instruction's PC.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Architectural value written to the destination register, if the
    /// instruction has one. FP results are stored as raw `f64` bits.
    pub result: Option<u64>,
    /// Effective address, for memory operations.
    pub eff_addr: Option<u64>,
    /// Raw value stored to memory (low `size` bytes significant), for stores.
    pub store_value: Option<u64>,
    /// Branch outcome, for control instructions (`true` = taken; unconditional
    /// control flow is always taken).
    pub taken: bool,
    /// The PC of the next committed instruction.
    pub next_pc: u64,
}

impl DynInst {
    /// The destination value interpreted as `f64` (for FP-writing
    /// instructions).
    pub fn result_f64(&self) -> Option<f64> {
        self.result.map(f64::from_bits)
    }

    /// Whether this dynamic instance redirected control flow away from the
    /// fall-through path.
    pub fn redirects(&self) -> bool {
        self.next_pc != self.pc.wrapping_add(4)
    }

    /// Folds this record into a running FNV-1a digest of the committed
    /// stream. Two executions retire the same stream iff folding every
    /// record in order produces the same digest (up to hash collision).
    /// Allocation-free; differential tests call it at retire time.
    pub fn fold_digest(&self, mut h: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        // The PC identifies the static instruction (one program per
        // comparison), so hashing the dynamic fields pins the semantics.
        eat(self.seq);
        eat(self.pc);
        eat(self.next_pc);
        eat(self.taken as u64);
        for opt in [self.result, self.eff_addr, self.store_value] {
            match opt {
                Some(v) => {
                    eat(1);
                    eat(v);
                }
                None => eat(0),
            }
        }
        h
    }
}

/// The FNV-1a offset basis — the initial value for a
/// [`DynInst::fold_digest`] chain.
pub const STREAM_DIGEST_INIT: u64 = 0xcbf2_9ce4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirects_detects_taken_control() {
        let d = DynInst {
            seq: 0,
            pc: 0x1000,
            inst: Inst::Nop,
            result: None,
            eff_addr: None,
            store_value: None,
            taken: false,
            next_pc: 0x1004,
        };
        assert!(!d.redirects());
        let t = DynInst {
            next_pc: 0x2000,
            ..d
        };
        assert!(t.redirects());
    }

    #[test]
    fn fp_result_bits() {
        let d = DynInst {
            seq: 0,
            pc: 0,
            inst: Inst::Nop,
            result: Some(2.5f64.to_bits()),
            eff_addr: None,
            store_value: None,
            taken: false,
            next_pc: 4,
        };
        assert_eq!(d.result_f64(), Some(2.5));
    }
}
