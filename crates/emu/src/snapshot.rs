//! The architectural-state summary differential tests compare.

use crate::{Emulator, MemImage};
use contopt_isa::{f, r};

/// End-of-run architectural state, reduced to a comparable value.
///
/// Two executions of the same program are architecturally equivalent iff
/// their snapshots are equal: same register files (FP compared as raw
/// bits, so NaN payloads and signed zeros count), same memory content
/// ([`MemImage::content_digest`], which ignores page-mapping history),
/// same number of committed instructions, and the same committed stream
/// ([`crate::DynInst::fold_digest`] chain).
///
/// This is the oracle the differential fuzzer asserts on: the optimized
/// pipeline may *time* a program differently, but may never change what
/// it computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSnapshot {
    /// Integer register file (`r31` is always zero).
    pub regs: [u64; 32],
    /// FP register file as raw `f64` bit patterns.
    pub fregs: [u64; 32],
    /// Order-independent digest of memory content.
    pub mem_digest: u64,
    /// Committed dynamic instructions.
    pub retired: u64,
    /// In-order digest of the committed stream.
    pub stream_digest: u64,
}

impl ArchSnapshot {
    /// Captures the emulator's current architectural state.
    ///
    /// `retired` and `stream_digest` come from the caller because they
    /// are properties of the *committed stream*, not of the final state
    /// (a pipeline accumulates them at retire time; a pure emulator run
    /// folds them as it steps).
    pub fn capture(emu: &Emulator, retired: u64, stream_digest: u64) -> ArchSnapshot {
        let mut regs = [0u64; 32];
        let mut fregs = [0u64; 32];
        for i in 0..32u8 {
            regs[i as usize] = emu.reg(r(i));
            fregs[i as usize] = emu.freg(f(i)).to_bits();
        }
        ArchSnapshot {
            regs,
            fregs,
            mem_digest: emu.mem().content_digest(),
            retired,
            stream_digest,
        }
    }

    /// Captures state from a bare memory image and register files (for
    /// callers that are not holding an [`Emulator`]).
    pub fn from_parts(
        regs: [u64; 32],
        fregs: [u64; 32],
        mem: &MemImage,
        retired: u64,
        stream_digest: u64,
    ) -> ArchSnapshot {
        ArchSnapshot {
            regs,
            fregs,
            mem_digest: mem.content_digest(),
            retired,
            stream_digest,
        }
    }

    /// Describes the first divergence from `other`, or `None` if the
    /// snapshots are architecturally equal. The label pair names the two
    /// sides in the message (e.g. `("emulator", "optimized")`).
    pub fn diff(&self, other: &ArchSnapshot, labels: (&str, &str)) -> Option<String> {
        let (a, b) = labels;
        if self.retired != other.retired {
            return Some(format!(
                "retired count diverges: {a}={} {b}={}",
                self.retired, other.retired
            ));
        }
        if self.stream_digest != other.stream_digest {
            return Some(format!(
                "committed-stream digest diverges: {a}={:#x} {b}={:#x}",
                self.stream_digest, other.stream_digest
            ));
        }
        for i in 0..32 {
            if self.regs[i] != other.regs[i] {
                return Some(format!(
                    "r{i} diverges: {a}={:#x} {b}={:#x}",
                    self.regs[i], other.regs[i]
                ));
            }
        }
        for i in 0..32 {
            if self.fregs[i] != other.fregs[i] {
                return Some(format!(
                    "f{i} diverges (bits): {a}={:#x} {b}={:#x}",
                    self.fregs[i], other.fregs[i]
                ));
            }
        }
        if self.mem_digest != other.mem_digest {
            return Some(format!(
                "memory content diverges: {a}={:#x} {b}={:#x}",
                self.mem_digest, other.mem_digest
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contopt_isa::Asm;

    fn run_snapshot(n: i64) -> ArchSnapshot {
        let mut a = Asm::new();
        a.li(r(1), n);
        a.li(r(2), 0);
        a.label("loop");
        a.addq(r(2), r(1), r(2));
        a.subq(r(1), 1, r(1));
        a.bne(r(1), "loop");
        a.halt();
        let mut emu = Emulator::new(a.finish().unwrap());
        let mut digest = crate::STREAM_DIGEST_INIT;
        let mut retired = 0;
        while let crate::Step::Inst(d) = emu.step().unwrap() {
            digest = d.fold_digest(digest);
            retired += 1;
        }
        ArchSnapshot::capture(&emu, retired, digest)
    }

    #[test]
    fn identical_runs_snapshot_equal() {
        let a = run_snapshot(10);
        let b = run_snapshot(10);
        assert_eq!(a, b);
        assert_eq!(a.diff(&b, ("a", "b")), None);
    }

    #[test]
    fn different_programs_diverge_with_a_readable_diff() {
        let a = run_snapshot(10);
        let b = run_snapshot(11);
        assert_ne!(a, b);
        let msg = a.diff(&b, ("ten", "eleven")).unwrap();
        assert!(msg.contains("ten="), "{msg}");
    }
}
