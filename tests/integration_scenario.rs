//! Tests of the scenario-file subsystem: the checked-in `scenarios/*.json`
//! files provably agree with the built-in figure plans, parsing is total
//! (typed errors, no panics), serialization round-trips byte-for-byte, and
//! the golden harness detects result drift.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_experiments::{
    builtin_scenarios, check_goldens, fig10_plan, fig11_plan, fig12_plan, fig6_plan, fig8_plan,
    fig9_plan, record_goldens, scenario_plan, smoke_scenario, table3_plan, DriftKind, Lab, Plan,
    TolerancePolicy,
};
use contopt_sim::{
    MachineConfig, OptimizerConfig, Scenario, ScenarioConfig, ToJson, ALL_WORKLOADS,
};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// The repository root (tests are registered under `crates/experiments`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn checked_in_scenario_files_match_the_builtin_builders_byte_for_byte() {
    for sc in builtin_scenarios() {
        let path = repo_root()
            .join("scenarios")
            .join(format!("{}.json", sc.name));
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run --emit-scenarios)", path.display()));
        assert_eq!(
            on_disk,
            sc.canonical_json(),
            "{} differs from the built-in builder; regenerate with \
             `cargo run -p contopt-experiments -- --emit-scenarios`",
            path.display()
        );
        let parsed = Scenario::load(&path).unwrap();
        assert_eq!(parsed, sc.normalized(), "{} round-trip", sc.name);
    }
}

#[test]
fn scenario_plans_match_the_builtin_figure_plans() {
    let lab = Lab::new(1_000);
    let builtin: Vec<(&str, Plan)> = vec![
        ("fig6", fig6_plan(&lab)),
        ("fig8", fig8_plan(&lab)),
        ("fig9", fig9_plan(&lab)),
        ("fig10", fig10_plan(&lab)),
        ("fig11", fig11_plan(&lab)),
        ("fig12", fig12_plan(&lab)),
        ("table3", table3_plan(&lab)),
    ];
    for (name, plan) in builtin {
        let path = repo_root().join("scenarios").join(format!("{name}.json"));
        let sc = Scenario::load(&path).unwrap();
        let from_file = scenario_plan(&sc).unwrap();
        let file_cells: HashSet<_> = from_file.fingerprints().into_iter().collect();
        let code_cells: HashSet<_> = plan.fingerprints().into_iter().collect();
        // The scenario may add the shared baseline beyond what a plan
        // strictly declares (table3 declares only the optimized machine),
        // but every built-in cell must be covered, and nothing beyond the
        // built-in cells plus the baseline may appear.
        for cell in &code_cells {
            assert!(
                file_cells.contains(cell),
                "{name}: cell for {:?} missing from scenario file",
                cell.1
            );
        }
        let baseline_key = {
            let mut p = Plan::new();
            for w in contopt_sim::workloads::suite() {
                p.cell(MachineConfig::default_paper(), &w);
            }
            p.fingerprints().into_iter().collect::<HashSet<_>>()
        };
        for cell in &file_cells {
            assert!(
                code_cells.contains(cell) || baseline_key.contains(cell),
                "{name}: scenario file declares unexpected cell {:?}",
                cell.1
            );
        }
    }
}

/// Deterministic splitmix64 (same generator the workload data sections
/// use) to drive the round-trip property sweep.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[test]
fn random_optimizer_configs_round_trip_through_scenario_json() {
    let mut state = 0x5eed_c0de_u64;
    let bit = |m: &mut u64| splitmix64(m) & 1 == 1;
    for i in 0..200 {
        let cfg = OptimizerConfig {
            enabled: bit(&mut state),
            optimize: bit(&mut state),
            value_feedback: bit(&mut state),
            feedback_delay: splitmix64(&mut state) % 16,
            extra_stages: splitmix64(&mut state) % 8,
            add_chain_depth: (splitmix64(&mut state) % 5) as u32,
            mem_chain_depth: (splitmix64(&mut state) % 3) as u32,
            mbc_entries: (splitmix64(&mut state) % 512 + 1) as usize,
            flush_mbc_on_unknown_store: bit(&mut state),
            enable_rle_sf: bit(&mut state),
            enable_reassociation: bit(&mut state),
            enable_branch_inference: bit(&mut state),
            enable_early_exec: bit(&mut state),
            discrete_interval: splitmix64(&mut state) % 1024,
        };
        let sc = Scenario {
            name: format!("prop{i}"),
            insts: 1 + splitmix64(&mut state) % 1_000_000,
            ablation: None,
            programs: vec![],
            configs: vec![ScenarioConfig {
                label: "x".into(),
                machine: MachineConfig::default_paper().with_optimizer(cfg),
                workloads: vec![ALL_WORKLOADS.into()],
            }],
        };
        // serialize → parse → serialize is the identity on bytes, and the
        // parsed struct is the normalized fixed point.
        let text = sc.canonical_json();
        let parsed = Scenario::parse(&text).unwrap_or_else(|e| panic!("case {i}: {e}\n{text}"));
        assert_eq!(parsed, sc.normalized(), "case {i}");
        assert_eq!(parsed.canonical_json(), text, "case {i}");
        // And the normalized config is what the plan engine fingerprints:
        // both forms must land in the same cell.
        assert_eq!(
            parsed.configs[0].machine.optimizer,
            cfg.normalized(),
            "case {i}"
        );
    }
}

#[test]
fn compact_and_pretty_scenario_json_parse_identically() {
    let sc = smoke_scenario();
    let compact = sc.to_json().to_string();
    let pretty = sc.canonical_json();
    assert_eq!(
        Scenario::parse(&compact).unwrap(),
        Scenario::parse(&pretty).unwrap()
    );
}

#[test]
fn checked_in_smoke_goldens_reproduce() {
    let sc = Scenario::load(repo_root().join("scenarios/smoke.json")).unwrap();
    let mut lab = Lab::new(sc.insts);
    let drifts = check_goldens(
        &mut lab,
        &sc,
        &repo_root().join("goldens"),
        &TolerancePolicy::exact(),
    )
    .unwrap();
    assert!(
        drifts.is_empty(),
        "smoke goldens drifted (re-record intentionally with --record): {drifts:?}"
    );
}

#[test]
fn golden_harness_detects_flag_flips_and_missing_files() {
    let dir = std::env::temp_dir().join(format!("contopt-goldens-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Record a tiny one-cell scenario, then check it: clean.
    let mut sc = Scenario {
        name: "drift".into(),
        insts: 50_000,
        ablation: None,
        programs: vec![],
        configs: vec![ScenarioConfig {
            label: "optimized".into(),
            machine: MachineConfig::default_with_optimizer(),
            workloads: vec!["twf".into()],
        }],
    };
    let mut lab = Lab::new(sc.insts);
    let written = record_goldens(&mut lab, &sc, &dir).unwrap();
    assert_eq!(written.len(), 1);
    let exact = TolerancePolicy::exact();
    assert!(check_goldens(&mut lab, &sc, &dir, &exact)
        .unwrap()
        .is_empty());

    // Flipping an optimizer flag in the scenario changes the simulated
    // result, so the same goldens now report drift — and the drift names
    // the first differing line so it is diagnosable from CI logs.
    sc.configs[0].machine.optimizer.enable_rle_sf = false;
    let drifts = check_goldens(&mut lab, &sc, &dir, &exact).unwrap();
    assert_eq!(drifts.len(), 1);
    let DriftKind::Changed { diff, disallowed } = &drifts[0].kind else {
        panic!("expected Changed, got {:?}", drifts[0].kind);
    };
    assert!(diff.line > 1);
    assert_ne!(diff.expected, diff.actual);
    assert!(disallowed.is_empty(), "exact checks list no field paths");
    let shown = drifts[0].to_string();
    assert!(shown.contains("- expected:"), "{shown}");
    assert!(shown.contains("+ actual:"), "{shown}");

    // A tolerance policy opting in every top-level section that can
    // legitimately move under the flag flip accepts the same run...
    let lenient = TolerancePolicy::allowing([
        "pipeline",
        "optimizer",
        "passes",
        "mbc",
        "predictor",
        "memory",
    ]);
    assert!(check_goldens(&mut lab, &sc, &dir, &lenient)
        .unwrap()
        .is_empty());
    // ...while a policy covering only an unrelated field still drifts and
    // names the uncovered paths.
    let narrow = TolerancePolicy::allowing(["insts_budget"]);
    let drifts = check_goldens(&mut lab, &sc, &dir, &narrow).unwrap();
    assert_eq!(drifts.len(), 1);
    let DriftKind::Changed { disallowed, .. } = &drifts[0].kind else {
        panic!("expected Changed");
    };
    assert!(
        !disallowed.is_empty(),
        "uncovered drift must name its field paths"
    );
    assert!(
        drifts[0].to_string().contains(&disallowed[0]),
        "drift display must include the uncovered paths"
    );

    // A label with no recorded golden is drift too, not a pass.
    sc.configs[0].label = "unrecorded".into();
    let drifts = check_goldens(&mut lab, &sc, &dir, &exact).unwrap();
    assert_eq!(drifts[0].kind, DriftKind::Missing);

    let _ = std::fs::remove_dir_all(&dir);
}
