//! Documentation link checker.
//!
//! Every relative markdown link and every backticked concrete repo path
//! in `README.md` and `docs/*.md` must point at something that exists.
//! Docs that reference moved or deleted files rot silently; this test
//! makes that rot a build failure.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/experiments.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repository root")
}

fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![root.join("README.md")];
    let mut docs: Vec<_> = std::fs::read_dir(root.join("docs"))
        .expect("docs/ directory")
        .map(|e| e.expect("docs/ entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    docs.sort();
    files.extend(docs);
    files
}

/// Extract the targets of markdown inline links `[text](target)`.
fn markdown_link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(close) = text[i..].find("](") {
        let start = i + close + 2;
        match text[start..].find(')') {
            Some(end) => {
                out.push(text[start..start + end].to_string());
                i = start + end + 1;
            }
            None => break,
        }
        let _ = bytes;
    }
    out
}

/// Extract backticked spans that look like concrete repo paths: they
/// contain a `/`, start with a known top-level directory, and have no
/// glob/placeholder characters.
fn backticked_paths(text: &str) -> Vec<String> {
    const ROOTS: &[&str] = &["crates/", "docs/", "scenarios/", "goldens/", "tests/"];
    let mut out = Vec::new();
    for piece in text.split('`').skip(1).step_by(2) {
        let concrete = piece.contains('/')
            && ROOTS.iter().any(|r| piece.starts_with(r))
            && !piece.contains(['*', '<', '>', '…', ' ', '{', '}']);
        if concrete {
            out.push(piece.to_string());
        }
    }
    out
}

#[test]
fn every_doc_link_and_path_resolves() {
    let root = repo_root();
    let mut broken = Vec::new();
    for file in doc_files(&root) {
        let text = std::fs::read_to_string(&file).expect("read doc file");
        let base = file.parent().expect("doc file has a parent directory");
        for target in markdown_link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
            {
                continue;
            }
            let path = target.split('#').next().unwrap_or(&target);
            // Markdown links resolve relative to the containing file.
            if !base.join(path).exists() {
                broken.push(format!("{}: link target `{target}`", file.display()));
            }
        }
        for path in backticked_paths(&text) {
            // Backticked repo paths are written repo-root-relative.
            if !root.join(&path).exists() {
                broken.push(format!("{}: path `{path}`", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken documentation references:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn link_extractors_parse_markdown() {
    let text = "see [a](docs/A.md) and [b](https://x.test) plus `crates/isa/src/lib.rs` \
                and the glob `scenarios/*.json` and inline `code`";
    assert_eq!(markdown_link_targets(text), ["docs/A.md", "https://x.test"]);
    assert_eq!(backticked_paths(text), ["crates/isa/src/lib.rs"]);
}
