//! End-to-end tests over the Table 1 workload suite: every benchmark runs
//! to completion on every machine configuration the paper evaluates, with
//! identical retirement counts (the timing models never change
//! architectural behaviour) and with the optimizer's strict value checker
//! active throughout.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_sim::emu::Emulator;
use contopt_sim::workloads::{suite, Suite, CHECKSUM_ADDR};
use contopt_sim::{simulate, MachineConfig, OptimizerConfig};

const CAP: u64 = 120_000; // instruction cap keeps the full matrix fast

#[test]
fn all_workloads_retire_identically_on_all_machines() {
    let configs = [
        ("baseline", MachineConfig::default_paper()),
        ("optimizer", MachineConfig::default_with_optimizer()),
        (
            "feedback-only",
            MachineConfig::default_paper().with_optimizer(OptimizerConfig::feedback_only()),
        ),
        ("fetch-bound", MachineConfig::fetch_bound()),
        ("exec-bound", MachineConfig::exec_bound()),
    ];
    for w in suite() {
        let mut retired = Vec::new();
        for (name, cfg) in configs {
            let rep = simulate(cfg, w.program.clone(), CAP);
            retired.push((name, rep.pipeline.retired));
        }
        let first = retired[0].1;
        assert!(first > 0);
        for (name, n) in &retired {
            assert_eq!(*n, first, "{}: {name} retired a different count", w.name);
        }
    }
}

#[test]
fn optimizer_checksums_match_functional_execution() {
    // The timing model replays the oracle stream, so memory results are by
    // construction those of the emulator; check the checksum plumbing
    // anyway by running the emulator standalone for a few benchmarks.
    for name in ["mcf", "untst", "g721d", "vpr"] {
        let w = contopt_sim::workloads::build(name).unwrap();
        let mut emu = Emulator::new(w.program.clone());
        emu.run_to_halt(5_000_000).unwrap();
        let chk = emu.mem().read_u64(CHECKSUM_ADDR);
        assert_ne!(chk, 0, "{name} checksum");
        // Determinism across reconstruction:
        let mut emu2 = Emulator::new(w.program.clone());
        emu2.run_to_halt(5_000_000).unwrap();
        assert_eq!(chk, emu2.mem().read_u64(CHECKSUM_ADDR));
    }
}

#[test]
fn suite_speedup_ordering_matches_the_paper() {
    // The paper's headline shape: mediabench benefits most; `amp` is flat.
    let mut means = std::collections::HashMap::new();
    for s in [Suite::SpecInt, Suite::SpecFp, Suite::MediaBench] {
        let mut prod = 1.0f64;
        let mut n = 0u32;
        for w in suite().into_iter().filter(|w| w.suite == s) {
            let base = simulate(MachineConfig::default_paper(), w.program.clone(), CAP);
            let opt = simulate(MachineConfig::default_with_optimizer(), w.program, CAP);
            prod *= opt.speedup_over(&base).unwrap();
            n += 1;
        }
        means.insert(s, prod.powf(1.0 / n as f64));
    }
    assert!(
        means[&Suite::MediaBench] > means[&Suite::SpecInt],
        "mediabench must benefit most: {:?}",
        means
    );
    assert!(means[&Suite::MediaBench] > 1.05);
    for (_, m) in means {
        assert!(
            m > 0.95 && m < 1.4,
            "suite mean out of plausible range: {m}"
        );
    }
}

#[test]
fn amp_is_flat_mcf_and_untst_stand_out() {
    let speedup = |name: &str| {
        let w = contopt_sim::workloads::build(name).unwrap();
        let base = simulate(MachineConfig::default_paper(), w.program.clone(), CAP);
        let opt = simulate(MachineConfig::default_with_optimizer(), w.program, CAP);
        opt.speedup_over(&base).unwrap()
    };
    let amp = speedup("amp");
    assert!(
        (0.97..1.05).contains(&amp),
        "paper: amp = 1.00, got {amp:.3}"
    );
    let mcf = speedup("mcf");
    assert!(mcf > 1.10, "paper: mcf is SPECint's outlier, got {mcf:.3}");
    let untst = speedup("untst");
    assert!(
        untst > 1.10,
        "paper: untst is the best case, got {untst:.3}"
    );
}

#[test]
fn workload_mix_is_diverse() {
    // The optimizer statistics should differ meaningfully across suites —
    // a degenerate suite (everything identical) would invalidate Table 3.
    let mut early = Vec::new();
    for w in suite() {
        let rep = simulate(MachineConfig::default_with_optimizer(), w.program, 60_000);
        early.push(rep.optimizer.pct_executed_early());
    }
    let min = early.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = early.iter().cloned().fold(0.0, f64::max);
    assert!(
        max - min > 15.0,
        "suite lacks diversity: {min:.1}..{max:.1}"
    );
}
