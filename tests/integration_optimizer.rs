//! Integration tests of the continuous optimizer's observable behaviour:
//! the paper's individual optimizations (CP, RA, RLE, SF, value feedback,
//! early branch resolution, strength reduction, branch inference) seen
//! end-to-end through the pipeline, plus symbolic-algebra properties.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_sim::isa::{r, Asm, Program};
use contopt_sim::{
    sym_add, sym_add_imm, sym_shl, sym_sub, MachineConfig, OptimizerConfig, PhysReg, Report,
    SimSession, SymValue,
};
use std::sync::Arc;

/// Runs `p` under `cfg` through the `SimSession` facade.
fn run_cfg(cfg: MachineConfig, p: impl Into<Arc<Program>>, insts: u64) -> Report {
    SimSession::builder()
        .machine(cfg)
        .program(p)
        .insts(insts)
        .build()
        .expect("test configurations are valid")
        .run()
}

fn run_opt(p: impl Into<Arc<Program>>) -> Report {
    run_cfg(MachineConfig::default_with_optimizer(), p, 1_000_000)
}

#[test]
fn constant_propagation_respects_the_serial_addition_limit() {
    // A straight-line chain of dependent adds off a known constant — the
    // paper's §3.1 example. At the default depth (one addition per rename
    // packet) only the head of each chain folds; at depth 3 the whole chain
    // executes in the optimizer.
    let chain = |depth: u32| {
        let mut a = Asm::new();
        a.li(r(1), 3);
        for _ in 0..50 {
            a.addq(r(1), 4, r(1));
        }
        a.halt();
        let cfg = MachineConfig::default_paper().with_optimizer(OptimizerConfig {
            add_chain_depth: depth,
            ..OptimizerConfig::default()
        });
        run_cfg(cfg, a.finish().unwrap(), 10_000).optimizer
    };
    let d0 = chain(0);
    let d3 = chain(3);
    assert!(
        d0.executed_early < 10,
        "depth 0 must not fold serial chains: {}",
        d0.executed_early
    );
    assert!(d0.chain_limited > 20, "the bundle limit must bite");
    assert!(
        d3.executed_early > 40,
        "depth 3 folds the whole chain: {}",
        d3.executed_early
    );
}

#[test]
fn reassociation_flattens_induction_chains() {
    // A pointer bumped by 8 every iteration: after feedback makes the base
    // known, each iteration's lda executes early.
    let mut a = Asm::new();
    let buf = a.data_zeros(8 * 4096);
    a.li(r(1), buf as i64);
    a.li(r(2), 2000);
    a.label("loop");
    a.lda(r(1), r(1), 8);
    a.subq(r(2), 1, r(2));
    a.bne(r(2), "loop");
    a.halt();
    let rep = run_opt(a.finish().unwrap());
    assert!(
        rep.optimizer.pct_executed_early() > 60.0,
        "induction-only loop should almost fully fold: {:.1}%",
        rep.optimizer.pct_executed_early()
    );
}

#[test]
fn store_forwarding_removes_reloads() {
    // A store immediately reloaded. In the same rename packet, RLE/SF may
    // not satisfy the dependence (§3.2) — so at the default memory-chain
    // depth nothing forwards, while "depth … & 1 mem" captures it.
    let program = || {
        let mut a = Asm::new();
        let buf = a.data_zeros(64);
        a.li(r(1), buf as i64);
        a.li(r(3), 1234);
        a.li(r(2), 300);
        a.label("loop");
        a.stq(r(3), r(1), 0);
        a.ldq(r(4), r(1), 0); // forwarded from the store
        a.addq(r(4), 1, r(3));
        a.subq(r(2), 1, r(2));
        a.bne(r(2), "loop");
        a.halt();
        a.finish().unwrap()
    };
    let default = run_opt(program());
    assert!(
        default.optimizer.pct_loads_removed() < 10.0,
        "same-packet forwarding must be blocked by default: {:.1}%",
        default.optimizer.pct_loads_removed()
    );
    let chained = run_cfg(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig {
            mem_chain_depth: 1,
            ..OptimizerConfig::default()
        }),
        program(),
        1_000_000,
    );
    assert!(
        chained.optimizer.pct_loads_removed() > 80.0,
        "one chained memory op must capture the pair: {:.1}%",
        chained.optimizer.pct_loads_removed()
    );
}

#[test]
fn redundant_load_elimination_merges_reloads() {
    let mut a = Asm::new();
    let buf = a.data_quads(&[42]);
    a.li(r(1), buf as i64);
    a.li(r(2), 300);
    a.label("loop");
    a.ldq(r(4), r(1), 0); // first load inserts; later iterations hit
    a.ldq(r(5), r(1), 0); // redundant within the iteration too
    a.addq(r(4), r(5), r(6));
    a.subq(r(2), 1, r(2));
    a.bne(r(2), "loop");
    a.halt();
    let rep = run_opt(a.finish().unwrap());
    assert!(
        rep.optimizer.pct_loads_removed() > 80.0,
        "repeated loads of one address must be eliminated: {:.1}%",
        rep.optimizer.pct_loads_removed()
    );
}

#[test]
fn mbc_size_matters_for_large_working_sets() {
    // 256 distinct quads cycled: fits a 512-entry MBC, thrashes a 16-entry.
    let mut a = Asm::new();
    let buf = a.data_quads(&(0..256u64).collect::<Vec<_>>());
    a.li(r(1), buf as i64);
    a.li(r(2), 256 * 20);
    a.li(r(5), 0);
    a.label("loop");
    a.and(r(2), 255, r(3));
    a.sll(r(3), 3, r(3));
    a.addq(r(3), r(1), r(3));
    a.ldq(r(4), r(3), 0);
    a.addq(r(5), r(4), r(5));
    a.subq(r(2), 1, r(2));
    a.bne(r(2), "loop");
    a.halt();
    let p = a.finish().unwrap();
    let small = run_cfg(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig {
            mbc_entries: 16,
            ..OptimizerConfig::default()
        }),
        p.clone(),
        1_000_000,
    );
    let large = run_cfg(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig {
            mbc_entries: 512,
            ..OptimizerConfig::default()
        }),
        p,
        1_000_000,
    );
    assert!(
        large.optimizer.loads_removed > 4 * small.optimizer.loads_removed.max(1),
        "512-entry MBC must capture far more reuse: {} vs {}",
        large.optimizer.loads_removed,
        small.optimizer.loads_removed
    );
}

#[test]
fn speculative_unknown_address_stores_are_caught() {
    // A store through an unknown (loaded) pointer aliases an MBC entry; the
    // next load of that address must not receive the stale value.
    let mut a = Asm::new();
    let slot = a.data_quads(&[111]);
    let ptr = a.data_quads(&[slot]); // pointer cell aliased by the store
    a.li(r(1), slot as i64);
    a.li(r(2), ptr as i64);
    a.li(r(9), 200);
    a.label("loop");
    a.ldq(r(3), r(1), 0); // inserts slot into the MBC
    a.ldq(r(4), r(2), 0); // the pointer (unknown value at rename)
    a.addq(r(3), 1, r(5));
    a.stq(r(5), r(4), 0); // unknown-address store hits `slot`
    a.ldq(r(6), r(1), 0); // must see the NEW value
    a.subq(r(9), 1, r(9));
    a.bne(r(9), "loop");
    a.halt();
    let rep = run_opt(a.finish().unwrap());
    // Completion itself proves correctness (strict checking). The stale
    // forwards must have been rejected at least once.
    assert!(
        rep.optimizer.mbc_rejects > 0,
        "stale speculative entries must be detected"
    );
}

#[test]
fn flush_policy_also_works() {
    let mut a = Asm::new();
    let slot = a.data_quads(&[5]);
    let ptr = a.data_quads(&[slot]);
    a.li(r(1), slot as i64);
    a.li(r(2), ptr as i64);
    a.li(r(9), 100);
    a.label("loop");
    a.ldq(r(3), r(1), 0);
    a.ldq(r(4), r(2), 0);
    a.stq(r(3), r(4), 0);
    a.ldq(r(6), r(1), 0);
    a.subq(r(9), 1, r(9));
    a.bne(r(9), "loop");
    a.halt();
    let rep = run_cfg(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig {
            flush_mbc_on_unknown_store: true,
            ..OptimizerConfig::default()
        }),
        a.finish().unwrap(),
        1_000_000,
    );
    assert_eq!(
        rep.optimizer.mbc_rejects, 0,
        "flushing leaves nothing stale"
    );
}

#[test]
fn early_branch_resolution_recovers_mispredicts() {
    // A branch whose direction flips according to a counter bit: gshare
    // eventually learns it, but early iterations mispredict — and the
    // counter is fully known to the optimizer, so they recover early.
    let mut a = Asm::new();
    a.li(r(1), 3000);
    a.li(r(3), 0);
    a.label("loop");
    a.and(r(1), 5, r(2));
    a.beq(r(2), "skip");
    a.addq(r(3), 1, r(3));
    a.label("skip");
    a.subq(r(1), 1, r(1));
    a.bne(r(1), "loop");
    a.halt();
    let rep = run_opt(a.finish().unwrap());
    assert!(rep.optimizer.mispredicted_branches > 0);
    assert!(
        rep.optimizer.pct_mispredicts_recovered() > 90.0,
        "counter-driven branches must resolve at rename: {:.1}%",
        rep.optimizer.pct_mispredicts_recovered()
    );
    assert!(rep.pipeline.early_redirects > 0);
}

#[test]
fn strength_reduction_of_power_of_two_multiplies() {
    let mut a = Asm::new();
    let buf = a.data_zeros(8);
    a.li(r(5), buf as i64);
    a.ldq(r(1), r(5), 0);
    a.li(r(9), 100);
    a.label("loop");
    a.mulq(r(1), 8, r(2)); // -> shift: single-cycle, reassociable
    a.mulq(r(1), 7, r(3)); // not reducible: complex unit
    a.addq(r(2), r(3), r(1));
    a.and(r(1), 0xffff, r(1));
    a.subq(r(9), 1, r(9));
    a.bne(r(9), "loop");
    a.halt();
    let rep = run_opt(a.finish().unwrap());
    assert!(
        rep.optimizer.strength_reductions >= 100,
        "mulq by 8 must strength-reduce: {}",
        rep.optimizer.strength_reductions
    );
}

#[test]
fn branch_inference_reveals_zero() {
    // After a not-taken `bne r`, the optimizer knows r == 0 and the
    // subsequent add of a constant executes early. The loads stream through
    // fresh addresses (and RLE/SF is off) so the value is genuinely unknown
    // at rename — only the branch direction reveals it.
    let mut a = Asm::new();
    let buf = a.data_zeros(8 * 600);
    a.li(r(5), buf as i64);
    a.li(r(9), 500);
    a.label("loop");
    a.ldq(r(1), r(5), 0); // always zero, but unknown at rename
    a.bne(r(1), "never");
    a.addq(r(1), 7, r(2)); // r1 inferred = 0 -> executes early
    a.label("never");
    a.lda(r(5), r(5), 8);
    a.subq(r(9), 1, r(9));
    a.bne(r(9), "loop");
    a.halt();
    let rep = run_cfg(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig {
            enable_rle_sf: false,
            ..OptimizerConfig::default()
        }),
        a.finish().unwrap(),
        1_000_000,
    );
    assert!(
        rep.optimizer.branch_inferences >= 400,
        "bne not-taken implies zero: {}",
        rep.optimizer.branch_inferences
    );
    assert!(
        rep.optimizer.executed_early > 500,
        "the dependent adds must execute early: {}",
        rep.optimizer.executed_early
    );
}

#[test]
fn discrete_optimization_is_weaker_than_continuous() {
    // §3.4: offline/trace-based frameworks invalidate the tables at every
    // trace boundary; shorter traces mean less accumulated knowledge.
    let w = contopt_sim::workloads::build("untst").unwrap();
    let base = run_cfg(MachineConfig::default_paper(), w.program.clone(), 300_000);
    let continuous = run_cfg(
        MachineConfig::default_with_optimizer(),
        w.program.clone(),
        300_000,
    );
    let discrete = run_cfg(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig::discrete(64)),
        w.program.clone(),
        300_000,
    );
    assert!(
        discrete.optimizer.trace_resets > 1000,
        "boundaries must fire"
    );
    assert_eq!(discrete.pipeline.retired, continuous.pipeline.retired);
    let (sc, sd) = (
        continuous.speedup_over(&base).unwrap(),
        discrete.speedup_over(&base).unwrap(),
    );
    assert!(
        sc > sd,
        "continuous ({sc:.3}) must beat 64-inst discrete traces ({sd:.3})"
    );
    // Longer traces approach continuous behaviour.
    let long = run_cfg(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig::discrete(4096)),
        w.program,
        300_000,
    );
    assert!(long.speedup_over(&base).unwrap() >= sd);
}

#[test]
fn feedback_alone_is_weaker_than_optimization() {
    let w = contopt_sim::workloads::build("mcf").unwrap();
    let base = run_cfg(MachineConfig::default_paper(), w.program.clone(), 300_000);
    let fb = run_cfg(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig::feedback_only()),
        w.program.clone(),
        300_000,
    );
    let opt = run_cfg(MachineConfig::default_with_optimizer(), w.program, 300_000);
    assert!(
        opt.speedup_over(&base).unwrap() > fb.speedup_over(&base).unwrap(),
        "Figure 9: optimization must add over feedback alone ({:.3} vs {:.3})",
        opt.speedup_over(&base).unwrap(),
        fb.speedup_over(&base).unwrap()
    );
}

// ---- symbolic-algebra properties ------------------------------------------
//
// Formerly proptest strategies; the container has no registry access, so
// the same properties are swept with a deterministic splitmix64 generator
// (512 cases each, mirroring the original ProptestConfig).

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, limit: u64) -> u64 {
        self.next() % limit
    }
}

/// A symbol together with the (oracle) value of its base register.
fn arb_sym(rng: &mut Rng) -> (SymValue, u64) {
    if rng.below(2) == 0 {
        (SymValue::Known(rng.next()), 0)
    } else {
        (
            SymValue::Expr {
                base: PhysReg::from_index(1 + rng.below(63) as usize),
                scale: rng.below(4) as u8,
                offset: rng.next() as i64,
            },
            rng.next(),
        )
    }
}

/// The central algebra invariant: every fold preserves the evaluated
/// value. This is what makes the hardware transformations safe.
#[test]
fn folds_preserve_value() {
    let mut rng = Rng(0xC0FFEE);
    for _ in 0..512 {
        let (s, bv) = arb_sym(&mut rng);
        let k = rng.next() as i64;
        let sh = rng.below(4) as u32;
        let eval = |x: SymValue| x.eval_with(|_| bv);
        let v = eval(s);
        assert_eq!(eval(sym_add_imm(s, k).value), v.wrapping_add(k as u64));
        if let Some(f) = sym_add(s, SymValue::Known(k as u64)) {
            assert_eq!(eval(f.value), v.wrapping_add(k as u64));
        }
        if let Some(f) = sym_sub(s, SymValue::Known(k as u64)) {
            assert_eq!(eval(f.value), v.wrapping_sub(k as u64));
        }
        if let Some(f) = sym_shl(s, sh) {
            assert_eq!(eval(f.value), v.wrapping_shl(sh));
        }
    }
}

/// Value feedback folds scale and offset exactly like evaluation.
#[test]
fn feedback_matches_eval() {
    let mut rng = Rng(0xFEEDBACC);
    for _ in 0..512 {
        let p = 1 + rng.below(63) as usize;
        let s = rng.below(4) as u8;
        let o = rng.next() as i64;
        let bv = rng.next();
        let sym = SymValue::Expr {
            base: PhysReg::from_index(p),
            scale: s,
            offset: o,
        };
        let fed = sym.feed_back(PhysReg::from_index(p), bv).unwrap();
        assert_eq!(fed.known().unwrap(), sym.eval_with(|_| bv));
    }
}
