//! Regression test for the allocation-free simulation hot loop: steady-state
//! `Machine::run` must not allocate per cycle (the rename-request batch, the
//! renamed-bundle buffer, and the completion-path dependence lists are all
//! reused scratch). The test installs a counting allocator and checks that
//! total allocations grow sub-linearly in the simulated instruction count.
//!
//! This file is its own test binary with exactly one test so no concurrent
//! test can perturb the global counter.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_sim::isa::{r, Asm, Program};
use contopt_sim::{MachineConfig, SimSession};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`, only counting calls.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A loop whose body never touches new memory pages, so every allocation
/// past warm-up would have to come from the per-cycle simulation path.
fn sum_loop(iters: i64) -> Program {
    let mut a = Asm::new();
    let arr = a.data_quads(&[3, 5, 7, 9]);
    a.li(r(1), arr as i64);
    a.li(r(2), iters);
    a.li(r(3), 0);
    a.label("loop");
    a.ldq(r(4), r(1), 0);
    a.addq(r(3), r(4), r(3));
    a.stq(r(3), r(1), 8);
    a.subq(r(2), 1, r(2));
    a.bne(r(2), "loop");
    a.halt();
    a.finish().unwrap()
}

fn allocs_during_run(iters: i64, cfg: MachineConfig) -> u64 {
    let session = SimSession::builder()
        .machine(cfg)
        .program(sum_loop(iters))
        .insts(10_000_000)
        .build()
        .unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = session.run();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(report.pipeline.retired, 3 + iters as u64 * 5 + 1);
    after - before
}

#[test]
fn steady_state_simulation_does_not_allocate_per_cycle() {
    for cfg in [
        MachineConfig::default_paper(),
        MachineConfig::default_with_optimizer(),
    ] {
        // Warm up lazy one-time state so both measurements start equal.
        allocs_during_run(10, cfg);
        let short = allocs_during_run(1_000, cfg);
        let long = allocs_during_run(50_000, cfg);
        // 49,000 extra loop iterations are ~245,000 extra instructions and
        // several hundred thousand extra cycles. Anything that allocates per
        // cycle (or per instruction) would add that many allocations; the
        // only growth allowed is amortized capacity doubling in the ROB /
        // queues / emulator page map, which is logarithmic.
        assert!(
            long < short + 200,
            "per-cycle allocation detected (opt={}): {short} allocs for 1k \
             iterations vs {long} for 50k",
            cfg.optimizer.enabled
        );
    }
}
