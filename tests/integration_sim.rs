//! Tests of the `contopt_sim` facade: builder validation, the
//! `PassSet ↔ OptimizerConfig` bridges, and the paper's ablation
//! scenarios expressed as pass lists.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_sim::isa::{r, Asm, Program};
use contopt_sim::passes::PassId;
use contopt_sim::{
    CpRa, EarlyExec, Error, MachineConfig, OptPass, OptimizerConfig, Pass, PassSet, RleSf,
    SimSession, ValueFeedback,
};

fn tiny_program() -> Program {
    let mut a = Asm::new();
    let buf = a.data_quads(&[7, 7, 7, 7]);
    a.li(r(1), buf as i64);
    a.li(r(2), 200);
    a.li(r(3), 0);
    a.label("loop");
    a.ldq(r(4), r(1), 0);
    a.addq(r(3), r(4), r(3));
    a.subq(r(2), 1, r(2));
    a.bne(r(2), "loop");
    a.halt();
    a.finish().unwrap()
}

#[test]
fn session_reuse_yields_byte_identical_reports() {
    // Guards the shared-`Arc<Program>` plumbing: repeated runs of one
    // session must not observe any hidden mutable state.
    let s = SimSession::builder()
        .workload("twf")
        .insts(30_000)
        .build()
        .unwrap();
    let a = s.run().to_json().to_string();
    let b = s.run().to_json().to_string();
    assert_eq!(a, b, "second run diverged from the first");
    // Cloning the session shares the program image rather than copying it.
    let c = s.clone();
    assert!(std::ptr::eq(s.program(), c.program()));
}

// ---- validation -----------------------------------------------------------

#[test]
fn rejects_zero_width_rename_bundles() {
    let mut cfg = MachineConfig::default_paper();
    cfg.fetch_width = 0;
    let err = SimSession::builder()
        .machine(cfg)
        .program(tiny_program())
        .build()
        .unwrap_err();
    assert_eq!(err, Error::ZeroRenameWidth);
}

#[test]
fn rejects_feedback_delay_beyond_the_rob() {
    let cfg = MachineConfig::default_paper().with_optimizer(OptimizerConfig {
        feedback_delay: 161, // ROB is 160
        ..OptimizerConfig::default()
    });
    let err = SimSession::builder()
        .machine(cfg)
        .program(tiny_program())
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        Error::FeedbackDelayExceedsRob {
            delay: 161,
            rob: 160
        }
    );
    // A delay equal to the ROB depth is still (barely) meaningful.
    let ok = MachineConfig::default_paper().with_optimizer(OptimizerConfig {
        feedback_delay: 160,
        ..OptimizerConfig::default()
    });
    assert!(SimSession::builder()
        .machine(ok)
        .program(tiny_program())
        .build()
        .is_ok());
}

#[test]
fn rejects_empty_pass_lists() {
    let err = SimSession::builder()
        .program(tiny_program())
        .passes([])
        .build()
        .unwrap_err();
    assert_eq!(err, Error::EmptyPasses);
    let err = SimSession::builder()
        .program(tiny_program())
        .pass_set(PassSet::new())
        .build()
        .unwrap_err();
    assert_eq!(err, Error::EmptyPasses);
}

#[test]
fn rejects_other_degenerate_machines() {
    let mut zero_retire = MachineConfig::default_paper();
    zero_retire.retire_width = 0;
    let mut zero_rob = MachineConfig::default_paper();
    zero_rob.rob_entries = 0;
    let mut tiny_pregs = MachineConfig::default_paper();
    tiny_pregs.preg_count = 8;
    for (cfg, want) in [
        (zero_retire, Error::ZeroRetireWidth),
        (zero_rob, Error::ZeroRobEntries),
        (
            tiny_pregs,
            Error::PregFileTooSmall {
                need: contopt_sim::isa::NUM_ARCH_REGS + 1,
                have: 8,
            },
        ),
    ] {
        let err = SimSession::builder()
            .machine(cfg)
            .program(tiny_program())
            .build()
            .unwrap_err();
        assert_eq!(err, want);
    }
    let err = SimSession::builder()
        .program(tiny_program())
        .insts(0)
        .build()
        .unwrap_err();
    assert_eq!(err, Error::ZeroInstructionBudget);
    // RLE/SF with a zero-entry MBC.
    let cfg = MachineConfig::default_paper().with_optimizer(OptimizerConfig {
        mbc_entries: 0,
        ..OptimizerConfig::default()
    });
    let err = SimSession::builder()
        .machine(cfg)
        .program(tiny_program())
        .build()
        .unwrap_err();
    assert_eq!(err, Error::ZeroMbcEntries);
}

#[test]
fn errors_display_usefully() {
    let e = Error::FeedbackDelayExceedsRob { delay: 5, rob: 4 };
    assert!(e.to_string().contains("5 cycles"));
    assert!(e.to_string().contains("4 entries"));
    assert!(Error::EmptyPasses.to_string().contains("baseline"));
    let _: &dyn std::error::Error = &e; // implements std::error::Error
}

// ---- the OptimizerConfig <-> PassSet bridges ------------------------------

#[test]
fn presets_round_trip_through_the_bridges() {
    for (name, cfg) in [
        ("default", OptimizerConfig::default()),
        ("baseline", OptimizerConfig::baseline()),
        ("feedback_only", OptimizerConfig::feedback_only()),
        ("discrete", OptimizerConfig::discrete(512)),
    ] {
        let set = PassSet::from(cfg);
        let back: OptimizerConfig = set.into();
        assert_eq!(back, cfg.normalized(), "{name}");
        // normalized() is behaviour-preserving for every preset: a second
        // round trip is a fixed point.
        assert_eq!(OptimizerConfig::from(PassSet::from(back)), back, "{name}");
    }
}

#[test]
fn tuned_configs_round_trip() {
    let cfg = OptimizerConfig {
        add_chain_depth: 3,
        mem_chain_depth: 1,
        mbc_entries: 64,
        feedback_delay: 5,
        extra_stages: 4,
        flush_mbc_on_unknown_store: true,
        ..OptimizerConfig::default()
    };
    let set = PassSet::from(cfg);
    assert!(set.contains(PassId::CpRa));
    assert!(set.contains(PassId::RleSf));
    assert!(set.contains(PassId::ValueFeedback));
    assert!(set.contains(PassId::EarlyExec));
    assert_eq!(OptimizerConfig::from(set), cfg.normalized());
}

#[test]
fn builder_accepts_a_pass_set_through_the_optimizer_bridge() {
    // `optimizer(...)` takes anything Into<OptimizerConfig>, including a
    // PassSet.
    let set: PassSet = [Pass::cp_ra(), Pass::early_exec()].into_iter().collect();
    let s = SimSession::builder()
        .program(tiny_program())
        .optimizer(set)
        .build()
        .unwrap();
    assert!(s.config().optimizer.optimize);
    assert!(!s.config().optimizer.enable_rle_sf);
}

// ---- ablation scenarios as pass lists -------------------------------------

fn run_passes(passes: impl IntoIterator<Item = Pass>) -> contopt_sim::Report {
    SimSession::builder()
        .program(tiny_program())
        .passes(passes)
        .insts(100_000)
        .build()
        .unwrap()
        .run()
}

#[test]
fn all_four_paper_scenarios_are_pass_lists() {
    // Baseline: no passes registered (the builder default).
    let baseline = SimSession::builder()
        .program(tiny_program())
        .insts(100_000)
        .build()
        .unwrap();
    assert!(!baseline.config().optimizer.enabled);
    let base = baseline.run();

    // CP/RA alone, RLE/SF alone, feedback alone: pass lists, no presets.
    let cp_ra = run_passes([Pass::cp_ra(), Pass::early_exec()]);
    let rle_sf = run_passes([Pass::rle_sf(), Pass::early_exec()]);
    let feedback = run_passes([Pass::value_feedback(), Pass::early_exec()]);
    let full = run_passes([
        Pass::cp_ra(),
        Pass::rle_sf(),
        Pass::value_feedback(),
        Pass::early_exec(),
    ]);

    // All scenarios retire the same stream.
    for r in [&cp_ra, &rle_sf, &feedback, &full] {
        assert_eq!(r.pipeline.retired, base.pipeline.retired);
    }
    // Each ablation leaves its own fingerprint.
    assert_eq!(cp_ra.optimizer.loads_removed, 0, "no RLE/SF, no removals");
    assert!(rle_sf.optimizer.loads_removed > 0, "RLE/SF removes reloads");
    assert_eq!(
        feedback.optimizer.moves_eliminated, 0,
        "feedback alone performs no reassociation"
    );
    assert!(full.optimizer.executed_early >= cp_ra.optimizer.executed_early);
    // The full pipeline must not lose to the baseline on this loop.
    assert!(full.speedup_over(&base).unwrap() > 1.0);
}

#[test]
fn passes_equal_the_bridged_preset_exactly() {
    // The same machine expressed as a pass list and as the legacy preset
    // must produce cycle-identical simulations.
    let via_passes = run_passes([
        Pass::cp_ra(),
        Pass::rle_sf(),
        Pass::value_feedback(),
        Pass::early_exec(),
    ]);
    let via_preset = SimSession::builder()
        .program(tiny_program())
        .optimizer(OptimizerConfig::default())
        .insts(100_000)
        .build()
        .unwrap()
        .run();
    assert_eq!(via_passes.pipeline.cycles, via_preset.pipeline.cycles);
    assert_eq!(via_passes.optimizer, via_preset.optimizer);

    let feedback_via_passes = run_passes([Pass::value_feedback(), Pass::early_exec()]);
    let feedback_via_preset = SimSession::builder()
        .program(tiny_program())
        .optimizer(OptimizerConfig::feedback_only())
        .insts(100_000)
        .build()
        .unwrap()
        .run();
    assert_eq!(
        feedback_via_passes.pipeline.cycles,
        feedback_via_preset.pipeline.cycles
    );
}

// ---- custom passes --------------------------------------------------------

#[test]
fn custom_passes_compose_with_stock_units() {
    /// A tuning pass: shrink the MBC to 16 entries.
    #[derive(Debug)]
    struct SmallMbc;
    impl OptPass for SmallMbc {
        fn name(&self) -> &'static str {
            "small-mbc"
        }
        fn configure(&self, cfg: &mut OptimizerConfig) {
            cfg.mbc_entries = 16;
        }
    }
    let set = PassSet::new()
        .with(CpRa::default())
        .with(RleSf::default())
        .with(ValueFeedback::default())
        .with(EarlyExec)
        .with(SmallMbc);
    let s = SimSession::builder()
        .program(tiny_program())
        .pass_set(set)
        .build()
        .unwrap();
    assert_eq!(s.config().optimizer.mbc_entries, 16);
    s.run(); // and it simulates
}

// ---- the unified report ---------------------------------------------------

#[test]
fn report_subsumes_all_stat_blocks() {
    let r = run_passes([
        Pass::cp_ra(),
        Pass::rle_sf(),
        Pass::value_feedback(),
        Pass::early_exec(),
    ]);
    assert!(r.pipeline.cycles > 0);
    assert!(r.optimizer.insts > 0);
    assert!(r.mbc.lookups > 0, "MBC stats are part of the report");
    assert!(r.predictor.cond_predictions > 0);
    assert!(r.memory.l1d.accesses > 0);
    assert_eq!(r.insts_budget, 100_000);
    let json = r.to_json().to_string();
    assert!(json.contains("\"mbc\""));
    let summary = r.summary();
    assert!(summary.contains("MBC"));
}
