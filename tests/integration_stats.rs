//! Tests of the per-pass stats attribution pipeline: the aggregate
//! `OptStats` is *derived* as the sum of the per-pass blocks (never
//! maintained separately), the sum invariant holds end-to-end across the
//! full workload suite, and disabling a pass zeroes exactly its block.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_sim::workloads::suite;
use contopt_sim::{OptStats, Pass, PassStats, Report, SimSession};

/// A reduced budget so the whole 22-benchmark suite stays fast; every
/// structural property under test is budget-independent.
const INSTS: u64 = 40_000;

fn run(workload: &str, passes: &[Pass]) -> Report {
    let mut b = SimSession::builder().workload(workload).insts(INSTS);
    if !passes.is_empty() {
        b = b.passes(passes.iter().copied());
    }
    b.build().expect("valid configuration").run()
}

const FULL: [Pass; 4] = {
    [
        Pass::CpRa(contopt_sim::CpRa {
            reassociate: true,
            branch_inference: true,
            add_chain_depth: 0,
        }),
        Pass::RleSf(contopt_sim::RleSf {
            entries: 128,
            flush_on_unknown_store: false,
            mem_chain_depth: 0,
        }),
        Pass::ValueFeedback(contopt_sim::ValueFeedback { delay: 1 }),
        Pass::EarlyExec(contopt_sim::EarlyExec),
    ]
};

/// Every pass list but `omit`.
fn full_minus(omit: Pass) -> Vec<Pass> {
    FULL.iter()
        .copied()
        .filter(|p| std::mem::discriminant(p) != std::mem::discriminant(&omit))
        .collect()
}

#[test]
fn per_pass_blocks_sum_to_the_aggregate_across_the_full_suite() {
    for w in suite() {
        let r = run(w.name, &FULL);
        assert_eq!(
            r.passes.total(),
            r.optimizer,
            "{}: per-pass blocks must sum to the aggregate OptStats",
            w.name
        );
        // The report is non-trivial: the invariant is not 0 == 0.
        assert!(r.optimizer.insts > 0, "{}: nothing simulated", w.name);
    }
}

#[test]
fn aggregate_equals_block_sum_for_ablations_too() {
    // The invariant is structural, so it must hold for every pass subset,
    // not just the full stack.
    let subsets: [&[Pass]; 4] = [
        &[],
        &[Pass::cp_ra(), Pass::early_exec()],
        &[Pass::value_feedback(), Pass::early_exec()],
        &[Pass::rle_sf(), Pass::early_exec()],
    ];
    for passes in subsets {
        let r = run("mcf", passes);
        assert_eq!(r.passes.total(), r.optimizer, "subset {passes:?}");
    }
}

#[test]
fn full_stack_populates_every_pass_block() {
    // `untst` exercises all four mechanisms (the quickstart example's
    // showcase workload).
    let r = run("untst", &FULL);
    let p = &r.passes;
    assert!(p.engine.insts > 0);
    assert!(p.engine.loads > 0);
    assert!(p.cp_ra.moves_eliminated > 0, "CP/RA eliminates moves");
    assert!(p.rle_sf.loads_removed > 0, "RLE/SF removes loads");
    assert!(
        p.value_feedback.feedback_integrations > 0,
        "feedback converts entries"
    );
    assert!(
        p.early_exec.executed_early > 0,
        "early exec completes insts"
    );
    assert!(p.early_exec.branches_resolved_early > 0);
}

#[test]
fn disabling_a_pass_zeroes_exactly_its_block() {
    let zero = OptStats::default();

    // No RLE/SF: its block is exactly zero while the others stay active.
    let r = run("untst", &full_minus(Pass::rle_sf()));
    assert_eq!(r.passes.rle_sf, zero, "rle-sf disabled ⇒ block zero");
    assert!(r.passes.cp_ra.moves_eliminated > 0);
    assert!(r.passes.early_exec.executed_early > 0);
    assert!(r.passes.value_feedback.feedback_integrations > 0);

    // No value feedback: its block is exactly zero.
    let r = run("untst", &full_minus(Pass::value_feedback()));
    assert_eq!(r.passes.value_feedback, zero);
    assert!(r.passes.early_exec.executed_early > 0);

    // No early execution: its block is exactly zero — nothing completes
    // at rename — and the completion-gated counters of the other passes
    // vanish with it (forwarding and move elimination need EarlyExec).
    let r = run("untst", &full_minus(Pass::early_exec()));
    assert_eq!(r.passes.early_exec, zero);
    assert_eq!(r.passes.rle_sf.loads_removed, 0);
    assert_eq!(r.passes.cp_ra.moves_eliminated, 0);
    assert!(
        r.passes.engine.mem_addr_generated > 0,
        "address generation needs no completion"
    );

    // Baseline: every block is zero except the insts the engine counted —
    // and with no optimizer at all, even those denominators are the only
    // nonzero fields.
    let r = run("untst", &[]);
    assert_eq!(r.passes.cp_ra, zero);
    assert_eq!(r.passes.rle_sf, zero);
    assert_eq!(r.passes.value_feedback, zero);
    assert_eq!(r.passes.early_exec, zero);
    let e = r.passes.engine;
    assert!(e.insts > 0 && e.mem_ops > 0);
    assert_eq!(e.mem_addr_generated, 0, "baseline generates no addresses");
    assert_eq!(e.chain_limited, 0);
}

#[test]
fn report_passes_survive_the_json_round_trip() {
    use contopt_sim::JsonValue;
    let r = run("untst", &FULL);
    let doc = JsonValue::parse(&r.canonical_json()).expect("canonical JSON parses");
    let passes = doc.get("passes").expect("passes object present");
    let lookup = |block: &str, field: &str| -> u64 {
        passes
            .get(block)
            .and_then(|b| b.get(field))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("missing passes.{block}.{field}"))
    };
    assert_eq!(
        lookup("rle-sf", "loads_removed"),
        r.passes.rle_sf.loads_removed
    );
    assert_eq!(
        lookup("early-exec", "executed_early"),
        r.passes.early_exec.executed_early
    );
    assert_eq!(lookup("engine", "insts"), r.passes.engine.insts);
    // The aggregate in the same document equals the block sum, field by
    // field, for the headline counters.
    let agg = doc.get("optimizer").expect("optimizer object");
    for field in ["insts", "executed_early", "loads_removed", "chain_limited"] {
        let total: u64 = ["engine", "cp-ra", "rle-sf", "value-feedback", "early-exec"]
            .iter()
            .map(|b| lookup(b, field))
            .sum();
        assert_eq!(
            agg.get(field).and_then(JsonValue::as_u64),
            Some(total),
            "optimizer.{field} must be the sum of the blocks"
        );
    }
    // And PassStats::total() agrees with what was serialized.
    let total: PassStats = r.passes;
    assert_eq!(total.total(), r.optimizer);
}
