//! Workspace-level integration tests for the static program verifier:
//! the `tests/analysis/` corpus of crafted-bad `.s` files golden-pins
//! the analyzer's canonical JSON diagnostics, fuzz-generated programs
//! must verify fully clean, every Table 1 suite kernel must verify
//! error-free, and the `--verify` CLI must map verdicts onto its
//! documented 0/1/2/3 exit codes.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_sim::isa::{analysis, asm_text};
use std::path::{Path, PathBuf};
use std::process::Command;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/analysis")
}

fn corpus_sources() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/analysis exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_diagnostics_are_golden_pinned() {
    let files = corpus_sources();
    assert!(
        files.len() >= 6,
        "corpus holds the crafted-bad programs: {files:?}"
    );
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let (_, report) = asm_text::parse_and_verify(&src)
            .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        assert!(
            report.has_errors(),
            "{} is in the corpus because it is bad",
            path.display()
        );
        let golden = path.with_extension("json");
        let expected = std::fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("{} golden missing: {e}", golden.display()));
        assert_eq!(
            report.to_json() + "\n",
            expected,
            "diagnostics drifted for {}; update {} intentionally",
            path.display(),
            golden.display()
        );
    }
}

#[test]
fn corpus_covers_every_pinned_error_kind() {
    // Each crafted file must trip the kind it is named for, with a span.
    for (stem, kind) in [
        ("use_before_init", "use_before_init"),
        ("wild_jump", "wild_jump"),
        ("oob_store", "out_of_bounds"),
        ("misaligned", "misaligned"),
        ("unbounded_loop", "unbounded_loop"),
        ("fall_off_end", "fall_off_end"),
    ] {
        let path = corpus_dir().join(format!("{stem}.s"));
        let src = std::fs::read_to_string(&path).unwrap();
        let (_, report) = asm_text::parse_and_verify(&src).unwrap();
        let hit = report.errors.iter().find(|e| e.kind.code() == kind);
        let hit = hit.unwrap_or_else(|| panic!("{stem}.s must report {kind}: {report}"));
        assert!(
            hit.span.is_some(),
            "text-parsed findings carry source spans: {hit:?}"
        );
    }
}

#[test]
fn fuzz_generated_programs_verify_clean_for_64_seeds() {
    // The property the generator promises by construction, checked by
    // the analyzer: no finding of any severity, every loop proved.
    for seed in 1..=64 {
        let report = analysis::verify(&contopt_sim::fuzz::program_for_seed(seed));
        assert!(report.is_clean(), "seed {seed}: {report}");
        assert_eq!(report.proved_loops, report.loops, "seed {seed}: {report}");
    }
}

#[test]
fn all_suite_kernels_verify_without_errors() {
    let suite = contopt_sim::workloads::suite();
    assert_eq!(suite.len(), 24, "the whole Table 1 suite");
    for w in suite {
        let report = analysis::verify(&w.program);
        assert!(!report.has_errors(), "{}: {report}", w.name);
    }
}

#[test]
fn verify_cli_maps_verdicts_to_exit_codes() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_contopt-experiments"))
            .current_dir(&repo)
            .args(args)
            .output()
            .expect("driver runs")
    };
    // Error-severity corpus file -> 1.
    let out = run(&["--verify", "tests/analysis/oob_store.s"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("out_of_bounds"),
        "{out:?}"
    );
    // Warnings-only kernel -> 2; --allow-warnings downgrades to 0.
    let hjoin = "crates/workloads/src/kernels/hjoin.s";
    assert_eq!(run(&["--verify", hjoin]).status.code(), Some(2));
    assert_eq!(
        run(&["--verify", hjoin, "--allow-warnings"]).status.code(),
        Some(0)
    );
    // A clean kernel and a clean scenario programs block -> 0.
    let out = run(&[
        "--verify",
        "crates/workloads/src/kernels/ptrch.s",
        "scenarios/asm_smoke.json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // Unreadable -> 3, and --json reports the machine-readable verdict.
    let out = run(&["--verify", "tests/analysis/does_not_exist.s", "--json"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"exit_code\": 3"),
        "{out:?}"
    );
}
