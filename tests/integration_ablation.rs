//! Tests of the counterfactual ablation subsystem: the matrix dedupes
//! through the `Lab` fingerprints, the attribution is byte-deterministic
//! at any worker count, an inactive pass's marginal is exactly zero, and
//! the checked-in `goldens/ablate_smoke/ablation.json` reproduces.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_experiments::{
    ablate_smoke_scenario, ablation_plan, ablation_report, check_ablation_golden, Lab,
    TolerancePolicy,
};
use contopt_sim::{AblationSpec, MachineConfig, PassId, Scenario, ScenarioConfig, ToJson};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// The repository root (tests are registered under `crates/experiments`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A reduced-budget copy of the smoke ablation scenario on one workload.
fn quick_scenario() -> Scenario {
    let mut sc = ablate_smoke_scenario();
    sc.insts = 20_000;
    sc.configs[0].workloads = vec!["twf".into()];
    sc
}

#[test]
fn ablation_is_byte_deterministic_across_worker_counts() {
    let sc = quick_scenario();
    let plan = ablation_plan(&sc).unwrap();
    let texts: Vec<String> = [1usize, 4]
        .into_iter()
        .map(|jobs| {
            let mut lab = Lab::new(sc.insts);
            lab.execute(&plan, jobs);
            ablation_report(&mut lab, &sc).unwrap().canonical_json()
        })
        .collect();
    assert_eq!(
        texts[0], texts[1],
        "leave-one-out matrix must be byte-identical at --jobs 1 vs --jobs 4"
    );
}

#[test]
fn disabled_pass_marginal_is_exactly_zero_and_costs_no_cell() {
    // A config with RLE/SF disabled: its leave-one-out machine is
    // fingerprint-identical to the full machine, so the row exists, is
    // flagged inactive, and has a marginal of exactly 0.
    let mut machine = MachineConfig::default_with_optimizer();
    machine.optimizer.enable_rle_sf = false;
    let sc = Scenario {
        name: "no-rle".into(),
        insts: 20_000,
        ablation: None,
        programs: vec![],
        configs: vec![ScenarioConfig {
            label: "no-rle-sf".into(),
            machine,
            workloads: vec!["twf".into()],
        }],
    };
    let plan = ablation_plan(&sc).unwrap();
    // full + baseline + 3 real leave-one-outs (the rle-sf one collapses
    // onto the full cell): 5 unique cells, not 1 + 1 + 4.
    assert_eq!(plan.len(), 5);
    let mut lab = Lab::new(sc.insts);
    lab.execute(&plan, 2);
    let r = ablation_report(&mut lab, &sc).unwrap();
    let w = &r.configs[0].workloads[0];
    assert_eq!(w.rows.len(), 4, "every stock pass gets a row");
    let rle = w
        .rows
        .iter()
        .find(|row| row.pass == PassId::RleSf.name())
        .unwrap();
    assert!(!rle.active);
    assert_eq!(rle.loo_cycles, w.full_cycles, "removal is the identity");
    assert_eq!(w.marginal_cycles(rle), 0, "marginal is exactly zero");
    assert_eq!(rle.events, 0, "a disabled pass earned no events");
    // Active passes report their full-run event counters.
    let ee = w
        .rows
        .iter()
        .find(|row| row.pass == PassId::EarlyExec.name())
        .unwrap();
    assert!(ee.active && ee.events > 0);
}

#[test]
fn plan_cell_count_equals_unique_config_fingerprints() {
    // The acceptance property: the expanded matrix reuses Lab dedup, so
    // the plan's cell count equals the number of unique configuration
    // fingerprints times workloads — never configs × passes blindly.
    let sc = ablate_smoke_scenario();
    let plan = ablation_plan(&sc).unwrap();
    let fingerprints = plan.fingerprints();
    let unique: HashSet<_> = fingerprints.iter().cloned().collect();
    assert_eq!(plan.len(), unique.len(), "no duplicate cells in the plan");
    // Full default optimizer: full + baseline + 4 LOO + 4 add-one-in =
    // 10 distinct machines on 2 workloads.
    assert_eq!(plan.len(), 20);
    let machines: HashSet<_> = fingerprints.iter().map(|(m, _)| *m).collect();
    assert_eq!(machines.len(), 10);
}

#[test]
fn checked_in_ablate_smoke_goldens_reproduce() {
    let sc = Scenario::load(repo_root().join("scenarios/ablate_smoke.json")).unwrap();
    assert_eq!(sc.ablation, Some(AblationSpec { add_one_in: true }));
    let mut lab = Lab::new(sc.insts);
    lab.execute(&ablation_plan(&sc).unwrap(), 2);
    let drifts = check_ablation_golden(
        &mut lab,
        &sc,
        &repo_root().join("goldens"),
        &TolerancePolicy::exact(),
    )
    .unwrap();
    assert!(
        drifts.is_empty(),
        "ablate_smoke golden drifted (re-record intentionally with \
         --ablate scenarios/ablate_smoke.json --record): {drifts:?}"
    );
}

#[test]
fn report_json_carries_the_attribution_invariants() {
    let sc = quick_scenario();
    let mut lab = Lab::new(sc.insts);
    let r = ablation_report(&mut lab, &sc).unwrap();
    let doc = r.to_json();
    let w = doc
        .get("configs")
        .and_then(|c| c.as_array())
        .and_then(|c| c[0].get("workloads"))
        .and_then(|w| w.as_array())
        .map(|w| &w[0])
        .expect("workload object");
    // recovered = marginal_sum + interaction_residual, straight from the
    // serialized numbers.
    let field = |k: &str| w.get(k).and_then(|v| v.as_f64()).unwrap();
    assert_eq!(
        field("recovered_cycles"),
        field("marginal_sum") + field("interaction_residual")
    );
    assert_eq!(
        field("baseline_cycles") - field("full_cycles"),
        field("recovered_cycles")
    );
    // Four rows, PassId::ALL order, each with the cycle columns.
    let rows = w.get("passes").and_then(|p| p.as_array()).unwrap();
    assert_eq!(
        rows.iter()
            .map(|r| r.get("pass").and_then(|p| p.as_str()).unwrap())
            .collect::<Vec<_>>(),
        PassId::ALL.map(PassId::name).to_vec()
    );
    for row in rows {
        for key in [
            "events",
            "loo_cycles",
            "marginal_cycles",
            "speedup_share_pct",
        ] {
            assert!(row.get(key).is_some(), "row missing {key}");
        }
    }
}
