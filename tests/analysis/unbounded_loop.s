; Verifier corpus: a cycle with no exit edge and no halt — provably
; infinite, an unbounded_loop error (not a mere unprovable warning).
.text
        li   r1, 0
spin:   addq r1, 1, r1
        br   spin
