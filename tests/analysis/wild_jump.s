; Verifier corpus: one branch lands outside the code image, another in
; the middle of an instruction — both are wild_jump errors.
.text
        li   r1, 1
        bne  r1, 0x9000         ; far beyond the program
        beq  r1, 0x1006         ; not on an instruction boundary
        halt
