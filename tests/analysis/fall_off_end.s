; Verifier corpus: execution can reach the end of the code image without
; a halt — fall_off_end. The skipped store also leaves dead code behind
; the unconditional branch: unreachable_code.
.text
        li   r1, 1
        br   over
        stq  r1, 0x100000       ; unreachable
over:   addq r1, r1, r2
.data
        .zero 8
