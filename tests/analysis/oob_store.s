; Verifier corpus: a store whose address is resolvable at analysis time
; and lands below the data region — out_of_bounds.
.text
        li   r1, 0x40           ; well below DATA_BASE
        stq  r1, 0(r1)
        halt
.data
buf:    .zero 16                ; a declared segment the store misses
