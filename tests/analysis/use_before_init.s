; Verifier corpus: r5 is read before any instruction writes it, and the
; branch skipping the initializer leaves r6 maybe-uninitialized at the
; join — both must surface as use_before_init.
.text
        addq r5, 1, r1          ; r5 never written
        beq  r1, skip
        li   r6, 7              ; initialized on one path only
skip:   addq r6, 1, r2          ; may-uninit at the join
        halt
