; Verifier corpus: an 8-byte load from a 4-aligned address inside a
; declared segment — misaligned, not out_of_bounds.
.text
        li   r2, buf
        ldq  r1, 4(r2)
        halt
.data
buf:    .zero 16
