//! Cross-crate integration tests of the timing model, including a
//! property-based mini-fuzzer that runs randomly generated programs through
//! the baseline and optimized machines. The optimizer's strict value
//! checking turns every run into a deep correctness check: any value it
//! derives that disagrees with the functional oracle panics.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_sim::isa::{r, Asm, Program};
use contopt_sim::{simulate, MachineConfig, OptimizerConfig};

fn counted_loop(n: i64, body: impl Fn(&mut Asm)) -> Program {
    let mut a = Asm::new();
    let scratch = a.data_zeros(256);
    a.li(r(20), scratch as i64);
    a.li(r(21), n);
    a.label("loop");
    body(&mut a);
    a.subq(r(21), 1, r(21));
    a.bne(r(21), "loop");
    a.halt();
    a.finish().expect("assembles")
}

#[test]
fn identical_retirement_across_machines() {
    let p = counted_loop(500, |a| {
        a.ldq(r(1), r(20), 0);
        a.addq(r(1), r(21), r(1));
        a.stq(r(1), r(20), 0);
    });
    let base = simulate(MachineConfig::default_paper(), p.clone(), 1_000_000);
    let opt = simulate(
        MachineConfig::default_with_optimizer(),
        p.clone(),
        1_000_000,
    );
    let fb = simulate(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig::feedback_only()),
        p,
        1_000_000,
    );
    assert_eq!(base.pipeline.retired, opt.pipeline.retired);
    assert_eq!(base.pipeline.retired, fb.pipeline.retired);
}

#[test]
fn simulation_is_deterministic() {
    let w = contopt_sim::workloads::build("twf").unwrap();
    let a = simulate(
        MachineConfig::default_with_optimizer(),
        w.program.clone(),
        100_000,
    );
    let b = simulate(
        MachineConfig::default_with_optimizer(),
        w.program.clone(),
        100_000,
    );
    assert_eq!(a.pipeline.cycles, b.pipeline.cycles);
    assert_eq!(a.optimizer, b.optimizer);
}

#[test]
fn mispredict_penalty_matches_table2() {
    assert_eq!(MachineConfig::default_paper().min_branch_penalty(), 20);
    assert_eq!(
        MachineConfig::default_with_optimizer().min_branch_penalty(),
        22
    );
    assert!(
        MachineConfig::default_with_optimizer().early_branch_penalty()
            < MachineConfig::default_paper().min_branch_penalty()
    );
}

#[test]
fn wider_exec_bound_machine_is_not_slower() {
    let w = contopt_sim::workloads::build("mgd").unwrap();
    let base = simulate(MachineConfig::default_paper(), w.program.clone(), 200_000);
    let wide = simulate(MachineConfig::exec_bound(), w.program.clone(), 200_000);
    assert!(
        wide.pipeline.cycles <= base.pipeline.cycles + base.pipeline.cycles / 20,
        "8-wide fetch should not slow down: {} vs {}",
        wide.pipeline.cycles,
        base.pipeline.cycles
    );
}

#[test]
fn bigger_schedulers_do_not_hurt() {
    let w = contopt_sim::workloads::build("mcf").unwrap();
    let base = simulate(MachineConfig::default_paper(), w.program.clone(), 200_000);
    let fb = simulate(MachineConfig::fetch_bound(), w.program.clone(), 200_000);
    assert!(fb.pipeline.cycles <= base.pipeline.cycles + base.pipeline.cycles / 20);
}

#[test]
fn ipc_never_exceeds_retire_width() {
    for name in ["mgd", "untst", "gap"] {
        let w = contopt_sim::workloads::build(name).unwrap();
        let r = simulate(MachineConfig::default_with_optimizer(), w.program, 150_000);
        assert!(
            r.ipc() <= 6.0,
            "{name} IPC {} exceeds retire width",
            r.ipc()
        );
    }
}

#[test]
fn optimizer_reduces_ooo_dispatch() {
    let w = contopt_sim::workloads::build("untst").unwrap();
    let base = simulate(MachineConfig::default_paper(), w.program.clone(), 300_000);
    let opt = simulate(MachineConfig::default_with_optimizer(), w.program, 300_000);
    assert!(
        opt.pipeline.dispatched_to_ooo < base.pipeline.dispatched_to_ooo,
        "early execution must relieve the out-of-order core"
    );
    assert_eq!(
        opt.pipeline.dispatched_to_ooo + opt.pipeline.bypassed_ooo,
        opt.pipeline.retired
    );
}

// ---- property-based mini-fuzzer -------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Addq(u8, i64, u8),
    Subq(u8, u8, u8),
    Sll(u8, u8, u8),
    Xor(u8, u8, u8),
    Mulq(u8, i64, u8),
    S8Addq(u8, u8, u8),
    Li(u8, i64),
    Mov(u8, u8),
    Store(u8, i64),
    Load(u8, i64),
    SkipIfZero(u8),
}

fn assemble(ops: &[Op], iterations: i64) -> Program {
    let mut a = Asm::new();
    let buf = a.data_zeros(256);
    a.li(r(20), buf as i64);
    a.li(r(21), iterations);
    a.label("loop");
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Addq(x, k, c) => {
                a.addq(r(x), k, r(c));
            }
            Op::Subq(x, y, c) => {
                a.subq(r(x), r(y), r(c));
            }
            Op::Sll(x, k, c) => {
                a.sll(r(x), k as i64, r(c));
            }
            Op::Xor(x, y, c) => {
                a.xor(r(x), r(y), r(c));
            }
            Op::Mulq(x, k, c) => {
                a.mulq(r(x), k, r(c));
            }
            Op::S8Addq(x, y, c) => {
                a.s8addq(r(x), r(y), r(c));
            }
            Op::Li(c, k) => {
                a.li(r(c), k);
            }
            Op::Mov(x, c) => {
                a.mov(r(x), r(c));
            }
            Op::Store(x, disp) => {
                a.stq(r(x), r(20), disp);
            }
            Op::Load(c, disp) => {
                a.ldq(r(c), r(20), disp);
            }
            Op::SkipIfZero(x) => {
                let lbl = format!("skip_{i}");
                a.bne(r(x), &lbl);
                a.addq(r(17), 1, r(17));
                a.label(&lbl);
            }
        }
    }
    a.subq(r(21), 1, r(21));
    a.bne(r(21), "loop");
    a.halt();
    a.finish().expect("generated program assembles")
}

/// Deterministic splitmix64 generator standing in for proptest (no
/// registry access in this container).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, limit: u64) -> u64 {
        self.next() % limit
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

fn arb_op(rng: &mut Rng) -> Op {
    let reg = |rng: &mut Rng| 1 + rng.below(15) as u8;
    match rng.below(11) {
        0 => Op::Addq(reg(rng), rng.range_i64(-64, 64), reg(rng)),
        1 => Op::Subq(reg(rng), reg(rng), reg(rng)),
        2 => Op::Sll(reg(rng), rng.below(8) as u8, reg(rng)),
        3 => Op::Xor(reg(rng), reg(rng), reg(rng)),
        4 => Op::Mulq(reg(rng), rng.range_i64(-16, 17), reg(rng)),
        5 => Op::S8Addq(reg(rng), reg(rng), reg(rng)),
        6 => Op::Li(reg(rng), rng.range_i64(-1000, 1000)),
        7 => Op::Mov(reg(rng), reg(rng)),
        8 => Op::Store(reg(rng), rng.range_i64(0, 24) * 8),
        9 => Op::Load(reg(rng), rng.range_i64(0, 24) * 8),
        _ => Op::SkipIfZero(reg(rng)),
    }
}

/// Random loops run identically (and without strict-check panics) on
/// the baseline, the default optimizer, feedback-only, and the deepest
/// dependence-depth configuration. Formerly a proptest; now a
/// deterministic 24-case sweep.
#[test]
fn fuzz_random_loops() {
    let mut rng = Rng(0x5EED_CA5E);
    for case in 0..24 {
        let n_ops = 1 + rng.below(23) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| arb_op(&mut rng)).collect();
        let iters = 1 + rng.below(39) as i64;
        let p = assemble(&ops, iters);
        let base = simulate(MachineConfig::default_paper(), p.clone(), 400_000);
        let opt = simulate(MachineConfig::default_with_optimizer(), p.clone(), 400_000);
        assert_eq!(
            base.pipeline.retired, opt.pipeline.retired,
            "case {case}: {ops:?} x{iters}"
        );
        let deep = MachineConfig::default_paper().with_optimizer(OptimizerConfig {
            add_chain_depth: 3,
            mem_chain_depth: 1,
            ..OptimizerConfig::default()
        });
        let d = simulate(deep, p.clone(), 400_000);
        assert_eq!(d.pipeline.retired, opt.pipeline.retired, "case {case}");
        let fb = simulate(
            MachineConfig::default_paper().with_optimizer(OptimizerConfig::feedback_only()),
            p,
            400_000,
        );
        assert_eq!(fb.pipeline.retired, opt.pipeline.retired, "case {case}");
        // Statistics invariants hold on arbitrary programs.
        let s = opt.optimizer;
        assert!(s.executed_early <= s.insts);
        assert!(s.loads_removed <= s.loads);
        assert!(s.mem_addr_generated <= s.mem_ops);
        assert!(s.mispredicts_recovered_early <= s.mispredicted_branches);
    }
}
