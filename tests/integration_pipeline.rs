//! Cross-crate integration tests of the timing model, including a
//! property-based mini-fuzzer that runs randomly generated programs through
//! the baseline and optimized machines. The optimizer's strict value
//! checking turns every run into a deep correctness check: any value it
//! derives that disagrees with the functional oracle panics.

use contopt::OptimizerConfig;
use contopt_isa::{r, Asm, Program};
use contopt_pipeline::{simulate, MachineConfig};
use proptest::prelude::*;

fn counted_loop(n: i64, body: impl Fn(&mut Asm)) -> Program {
    let mut a = Asm::new();
    let scratch = a.data_zeros(256);
    a.li(r(20), scratch as i64);
    a.li(r(21), n);
    a.label("loop");
    body(&mut a);
    a.subq(r(21), 1, r(21));
    a.bne(r(21), "loop");
    a.halt();
    a.finish().expect("assembles")
}

#[test]
fn identical_retirement_across_machines() {
    let p = counted_loop(500, |a| {
        a.ldq(r(1), r(20), 0);
        a.addq(r(1), r(21), r(1));
        a.stq(r(1), r(20), 0);
    });
    let base = simulate(MachineConfig::default_paper(), p.clone(), 1_000_000);
    let opt = simulate(MachineConfig::default_with_optimizer(), p.clone(), 1_000_000);
    let fb = simulate(
        MachineConfig::default_paper().with_optimizer(OptimizerConfig::feedback_only()),
        p,
        1_000_000,
    );
    assert_eq!(base.pipeline.retired, opt.pipeline.retired);
    assert_eq!(base.pipeline.retired, fb.pipeline.retired);
}

#[test]
fn simulation_is_deterministic() {
    let w = contopt_workloads::build("twf").unwrap();
    let a = simulate(
        MachineConfig::default_with_optimizer(),
        w.program.clone(),
        100_000,
    );
    let b = simulate(
        MachineConfig::default_with_optimizer(),
        w.program.clone(),
        100_000,
    );
    assert_eq!(a.pipeline.cycles, b.pipeline.cycles);
    assert_eq!(a.optimizer, b.optimizer);
}

#[test]
fn mispredict_penalty_matches_table2() {
    assert_eq!(MachineConfig::default_paper().min_branch_penalty(), 20);
    assert_eq!(
        MachineConfig::default_with_optimizer().min_branch_penalty(),
        22
    );
    assert!(
        MachineConfig::default_with_optimizer().early_branch_penalty()
            < MachineConfig::default_paper().min_branch_penalty()
    );
}

#[test]
fn wider_exec_bound_machine_is_not_slower() {
    let w = contopt_workloads::build("mgd").unwrap();
    let base = simulate(MachineConfig::default_paper(), w.program.clone(), 200_000);
    let wide = simulate(MachineConfig::exec_bound(), w.program.clone(), 200_000);
    assert!(
        wide.pipeline.cycles <= base.pipeline.cycles + base.pipeline.cycles / 20,
        "8-wide fetch should not slow down: {} vs {}",
        wide.pipeline.cycles,
        base.pipeline.cycles
    );
}

#[test]
fn bigger_schedulers_do_not_hurt() {
    let w = contopt_workloads::build("mcf").unwrap();
    let base = simulate(MachineConfig::default_paper(), w.program.clone(), 200_000);
    let fb = simulate(MachineConfig::fetch_bound(), w.program.clone(), 200_000);
    assert!(fb.pipeline.cycles <= base.pipeline.cycles + base.pipeline.cycles / 20);
}

#[test]
fn ipc_never_exceeds_retire_width() {
    for name in ["mgd", "untst", "gap"] {
        let w = contopt_workloads::build(name).unwrap();
        let r = simulate(MachineConfig::default_with_optimizer(), w.program, 150_000);
        assert!(r.ipc() <= 6.0, "{name} IPC {} exceeds retire width", r.ipc());
    }
}

#[test]
fn optimizer_reduces_ooo_dispatch() {
    let w = contopt_workloads::build("untst").unwrap();
    let base = simulate(MachineConfig::default_paper(), w.program.clone(), 300_000);
    let opt = simulate(MachineConfig::default_with_optimizer(), w.program, 300_000);
    assert!(
        opt.pipeline.dispatched_to_ooo < base.pipeline.dispatched_to_ooo,
        "early execution must relieve the out-of-order core"
    );
    assert_eq!(
        opt.pipeline.dispatched_to_ooo + opt.pipeline.bypassed_ooo,
        opt.pipeline.retired
    );
}

// ---- property-based mini-fuzzer -------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Addq(u8, i64, u8),
    Subq(u8, u8, u8),
    Sll(u8, u8, u8),
    Xor(u8, u8, u8),
    Mulq(u8, i64, u8),
    S8Addq(u8, u8, u8),
    Li(u8, i64),
    Mov(u8, u8),
    Store(u8, i64),
    Load(u8, i64),
    SkipIfZero(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let reg = 1u8..16;
    prop_oneof![
        (reg.clone(), -64i64..64, reg.clone()).prop_map(|(a, k, c)| Op::Addq(a, k, c)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Op::Subq(a, b, c)),
        (reg.clone(), 0u8..8, reg.clone()).prop_map(|(a, k, c)| Op::Sll(a, k, c)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Op::Xor(a, b, c)),
        (reg.clone(), -16i64..17, reg.clone()).prop_map(|(a, k, c)| Op::Mulq(a, k, c)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Op::S8Addq(a, b, c)),
        (reg.clone(), -1000i64..1000).prop_map(|(c, k)| Op::Li(c, k)),
        (reg.clone(), reg.clone()).prop_map(|(a, c)| Op::Mov(a, c)),
        (reg.clone(), 0i64..24).prop_map(|(a, k)| Op::Store(a, k * 8)),
        (reg.clone(), 0i64..24).prop_map(|(c, k)| Op::Load(c, k * 8)),
        reg.prop_map(Op::SkipIfZero),
    ]
}

fn assemble(ops: &[Op], iterations: i64) -> Program {
    let mut a = Asm::new();
    let buf = a.data_zeros(256);
    a.li(r(20), buf as i64);
    a.li(r(21), iterations);
    a.label("loop");
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Addq(x, k, c) => {
                a.addq(r(x), k, r(c));
            }
            Op::Subq(x, y, c) => {
                a.subq(r(x), r(y), r(c));
            }
            Op::Sll(x, k, c) => {
                a.sll(r(x), k as i64, r(c));
            }
            Op::Xor(x, y, c) => {
                a.xor(r(x), r(y), r(c));
            }
            Op::Mulq(x, k, c) => {
                a.mulq(r(x), k, r(c));
            }
            Op::S8Addq(x, y, c) => {
                a.s8addq(r(x), r(y), r(c));
            }
            Op::Li(c, k) => {
                a.li(r(c), k);
            }
            Op::Mov(x, c) => {
                a.mov(r(x), r(c));
            }
            Op::Store(x, disp) => {
                a.stq(r(x), r(20), disp);
            }
            Op::Load(c, disp) => {
                a.ldq(r(c), r(20), disp);
            }
            Op::SkipIfZero(x) => {
                let lbl = format!("skip_{i}");
                a.bne(r(x), &lbl);
                a.addq(r(17), 1, r(17));
                a.label(&lbl);
            }
        }
    }
    a.subq(r(21), 1, r(21));
    a.bne(r(21), "loop");
    a.halt();
    a.finish().expect("generated program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random loops run identically (and without strict-check panics) on
    /// the baseline, the default optimizer, feedback-only, and the deepest
    /// dependence-depth configuration.
    #[test]
    fn fuzz_random_loops(ops in proptest::collection::vec(op_strategy(), 1..24),
                         iters in 1i64..40) {
        let p = assemble(&ops, iters);
        let base = simulate(MachineConfig::default_paper(), p.clone(), 400_000);
        let opt = simulate(MachineConfig::default_with_optimizer(), p.clone(), 400_000);
        prop_assert_eq!(base.pipeline.retired, opt.pipeline.retired);
        let deep = MachineConfig::default_paper().with_optimizer(OptimizerConfig {
            add_chain_depth: 3,
            mem_chain_depth: 1,
            ..OptimizerConfig::default()
        });
        let d = simulate(deep, p.clone(), 400_000);
        prop_assert_eq!(d.pipeline.retired, opt.pipeline.retired);
        let fb = simulate(
            MachineConfig::default_paper().with_optimizer(OptimizerConfig::feedback_only()),
            p,
            400_000,
        );
        prop_assert_eq!(fb.pipeline.retired, opt.pipeline.retired);
        // Statistics invariants hold on arbitrary programs.
        let s = opt.optimizer;
        prop_assert!(s.executed_early <= s.insts);
        prop_assert!(s.loads_removed <= s.loads);
        prop_assert!(s.mem_addr_generated <= s.mem_ops);
        prop_assert!(s.mispredicts_recovered_early <= s.mispredicted_branches);
    }
}
