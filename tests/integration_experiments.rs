//! Tests of the experiment harness: every table/figure regenerator runs at
//! a reduced instruction budget, produces structurally complete output, and
//! reproduces the qualitative claims of the paper's evaluation section.

// Test harness code may panic freely; helper functions here sit outside
// clippy's in-test-function exemption for the workspace unwrap/expect
// lints, which police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_experiments::{
    fig10, fig11, fig12, fig6, fig6_plan, fig8, fig9, geomean, table1, table2, table3, Lab,
};
use contopt_sim::workloads::Suite;
use contopt_sim::{MachineConfig, ToJson};

const INSTS: u64 = 60_000;

#[test]
fn table1_lists_all_twentyfour_benchmarks() {
    let lab = Lab::new(INSTS);
    let t = table1(&lab);
    assert_eq!(t.rows.len(), 24);
    assert!(t.rows.iter().all(|r| r.insts > 10_000));
    let text = t.to_string();
    for name in ["bzp", "mcf", "untst", "g721d", "ptrch", "hjoin"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn table2_matches_the_paper() {
    let t = table2();
    let text = t.to_string();
    assert!(text.contains("4 insts/cycle"));
    assert!(text.contains("6 insts/cycle"));
    assert!(text.contains("18-bit gshare, 1024-entry BTB"));
    assert!(text.contains("20 cycles (min)"));
    assert!(text.contains("four 8-entry schedulers"));
    assert!(text.contains("max. 160 in-flight insts"));
    assert!(text.contains("4 Simple IALUs, 1 Complex IALU, 2 FPALUs, 2 Agen"));
    assert!(text.contains("64KB, 4-way, 64B lines"));
    assert!(text.contains("32KB, 2-way, 32B lines"));
    assert!(text.contains("1024KB, 2-way, 128B lines"));
    assert!(text.contains("100 cycle latency"));
    assert!(text.contains("Memory Bypass Cache of 128 entries"));
}

#[test]
fn fig6_speedups_are_in_the_papers_band() {
    let mut lab = Lab::new(INSTS);
    let f = fig6(&mut lab);
    assert_eq!(f.rows.len(), 24);
    for (_, name, s) in &f.rows {
        assert!(
            (0.9..1.5).contains(s),
            "{name} speedup {s:.3} outside plausible band"
        );
    }
    assert!(f.means.mediabench > f.means.specint);
    assert!(f.means.overall() > 1.0);
    // Rendering includes every benchmark and the averages.
    let text = f.to_string();
    assert_eq!(text.matches("avg").count(), 3);
}

#[test]
fn table3_percentages_are_sane_and_paper_shaped() {
    let mut lab = Lab::new(INSTS);
    let t = table3(&mut lab);
    assert_eq!(t.rows.len(), 4); // 3 suites + avg
    for r in &t.rows {
        for v in [
            r.exec_early,
            r.recovered_mispredicts,
            r.addr_generated,
            r.loads_removed,
        ] {
            assert!((0.0..=100.0).contains(&v), "{}: {v}", r.suite);
        }
    }
    let mb = &t.rows[2];
    assert_eq!(mb.suite, "mediabench");
    let int = &t.rows[0];
    assert!(
        mb.loads_removed > int.loads_removed,
        "paper: mediabench removes the most loads"
    );
    let avg = &t.rows[3];
    assert!(avg.exec_early > 15.0, "a large fraction executes early");
    assert!(avg.addr_generated > 50.0, "most addresses generate early");
}

#[test]
fn fig8_exec_bound_benefits_most_from_optimization() {
    let mut lab = Lab::new(INSTS);
    let f = fig8(&mut lab);
    assert_eq!(f.labels.len(), 5);
    for s in [Suite::SpecInt, Suite::SpecFp, Suite::MediaBench] {
        let bars = f.suite(s);
        let (fetch, fetch_opt, _opt, exec, exec_opt) =
            (bars[0], bars[1], bars[2], bars[3], bars[4]);
        // Adding the optimizer helps both restructured machines...
        assert!(fetch_opt >= fetch * 0.99, "{s}: {fetch_opt} vs {fetch}");
        assert!(exec_opt >= exec * 0.99, "{s}: {exec_opt} vs {exec}");
        // ...and the relative gain is larger on the execution-bound machine
        // (the paper's §5.3 headline).
        let gain_fetch = fetch_opt / fetch;
        let gain_exec = exec_opt / exec;
        assert!(
            gain_exec >= gain_fetch * 0.98,
            "{s}: exec-bound gain {gain_exec:.3} should dominate fetch-bound {gain_fetch:.3}"
        );
    }
}

#[test]
fn fig9_feedback_alone_offers_little() {
    let mut lab = Lab::new(INSTS);
    let f = fig9(&mut lab);
    for s in [Suite::SpecInt, Suite::SpecFp, Suite::MediaBench] {
        let bars = f.suite(s);
        let (feedback, full) = (bars[0], bars[1]);
        assert!(
            full > feedback,
            "{s}: optimization must add over feedback alone"
        );
    }
}

#[test]
fn fig10_deeper_chains_never_hurt_and_help_mediabench() {
    let mut lab = Lab::new(INSTS);
    let f = fig10(&mut lab);
    for s in [Suite::SpecInt, Suite::SpecFp, Suite::MediaBench] {
        let bars = f.suite(s);
        assert!(
            bars[2] >= bars[0] * 0.995,
            "{s}: depth 3 must not lose to depth 0 ({} vs {})",
            bars[2],
            bars[0]
        );
    }
    let mb = f.suite(Suite::MediaBench);
    assert!(
        mb[2] > mb[0],
        "paper: mediabench depends on dependent-instruction processing"
    );
}

#[test]
fn fig11_latency_degrades_gracefully() {
    let mut lab = Lab::new(INSTS);
    let f = fig11(&mut lab);
    for s in [Suite::SpecInt, Suite::SpecFp, Suite::MediaBench] {
        let bars = f.suite(s);
        let (d0, d2, d4) = (bars[0], bars[1], bars[2]);
        assert!(d0 >= d2 * 0.995 && d2 >= d4 * 0.995, "{s}: {d0} {d2} {d4}");
        assert!(d4 > 0.97, "{s}: still worthwhile at 4 extra stages");
    }
}

#[test]
fn fig12_feedback_delay_is_flat() {
    let mut lab = Lab::new(INSTS);
    let f = fig12(&mut lab);
    for s in [Suite::SpecInt, Suite::SpecFp, Suite::MediaBench] {
        let bars = f.suite(s);
        let spread = bars.iter().cloned().fold(0.0f64, f64::max)
            - bars.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 0.05,
            "{s}: Figure 12 is flat in the paper; spread {spread:.3}"
        );
    }
}

#[test]
fn results_serialize_to_json() {
    let mut lab = Lab::new(30_000);
    let f = fig9(&mut lab);
    let j = f.to_json().to_string();
    assert!(j.contains("feedback"));
    let t = table2();
    assert!(t.to_json().to_string().contains("gshare"));
    // Pretty output stays valid-looking and indented.
    assert!(t.to_json().pretty().contains("\n  \"rows\": ["));
}

#[test]
fn parallel_execution_is_deterministic() {
    // The same plan executed on one worker and on four must fill the cache
    // with byte-identical reports for every cell, and the figures
    // regenerated from either cache must serialize identically.
    let mut lab1 = Lab::new(30_000);
    let plan1 = fig6_plan(&lab1);
    lab1.execute(&plan1, 1);
    let mut lab4 = Lab::new(30_000);
    let plan4 = fig6_plan(&lab4);
    lab4.execute(&plan4, 4);

    let configs = [
        MachineConfig::default_paper(),
        MachineConfig::default_with_optimizer(),
    ];
    for cfg in configs {
        for w in lab1.workloads().to_vec() {
            let a = lab1.cached(&cfg, w.name).expect("jobs=1 simulated cell");
            let b = lab4.cached(&cfg, w.name).expect("jobs=4 simulated cell");
            assert_eq!(
                a.to_json().to_string(),
                b.to_json().to_string(),
                "{} diverged across worker counts",
                w.name
            );
        }
    }
    assert_eq!(
        fig6(&mut lab1).to_json().to_string(),
        fig6(&mut lab4).to_json().to_string(),
        "figure output must not depend on the worker count"
    );
}

#[test]
fn geomean_helper() {
    assert!((geomean(&[1.0, 1.0, 8.0]) - 2.0).abs() < 1e-12);
}
