//! Reproduces the paper's §5.2 analysis of `mcf`: the `sort_basket`
//! quicksort fills the Memory Bypass Cache with array elements, and once a
//! sub-array is small enough every access forwards, letting the dependent
//! instructions execute in the optimizer.
//!
//! ```text
//! cargo run --release -p contopt-sim --example quicksort_mcf
//! ```

// Example code may panic on impossible conditions; the workspace
// unwrap/expect lints police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_sim::{MachineConfig, SimSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base_session = SimSession::builder()
        .workload("mcf")
        .insts(2_000_000)
        .build()?;
    let opt_session = SimSession::builder()
        .workload("mcf")
        .machine(MachineConfig::default_with_optimizer())
        .insts(2_000_000)
        .build()?;
    let w = contopt_sim::workloads::build("mcf").expect("mcf is in the suite");
    println!("workload: {} — {}", w.name, w.description);

    let base = base_session.run();
    let opt = opt_session.run();

    println!();
    println!("                      baseline      +optimizer");
    println!(
        "cycles            {:>12} {:>15}",
        base.pipeline.cycles, opt.pipeline.cycles
    );
    println!("IPC               {:>12.3} {:>15.3}", base.ipc(), opt.ipc());
    println!("speedup over baseline: {:.3}x", opt.speedup_over(&base)?);
    println!();
    println!("what the optimizer did to the quicksort (paper §5.2):");
    println!(
        "  loads removed by RLE/SF ....... {:>8} ({:.1}% of loads)",
        opt.optimizer.loads_removed,
        opt.optimizer.pct_loads_removed()
    );
    println!(
        "  instructions executed early ... {:>8} ({:.1}% of stream)",
        opt.optimizer.executed_early,
        opt.optimizer.pct_executed_early()
    );
    println!(
        "  dispatched to the OoO core .... {:>8} (baseline dispatched {})",
        opt.pipeline.dispatched_to_ooo, base.pipeline.dispatched_to_ooo
    );
    println!(
        "  data-cache loads .............. {:>8} (baseline did {})",
        opt.pipeline.dcache_loads, base.pipeline.dcache_loads
    );
    println!(
        "  MBC traffic ................... {:>8} lookups, {} hits",
        opt.mbc.lookups, opt.mbc.hits
    );
    Ok(())
}
