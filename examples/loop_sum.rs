//! Walks the rename/optimize stage instruction by instruction on the
//! paper's §2.4 loop, printing what the optimizer did with each dynamic
//! instruction — constant propagation, reassociation, early execution, and
//! (after value feedback warms up) whole-iteration early execution.
//!
//! ```text
//! cargo run --release -p contopt-sim --example loop_sum
//! ```

use contopt_sim::emu::{Emulator, Step};
use contopt_sim::isa::{r, Asm};
use contopt_sim::{Optimizer, OptimizerConfig, RenameReq, RenamedClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut a = Asm::new();
    let arr = a.data_quads(&[7, 7, 7, 7, 7, 7, 7, 7]);
    a.li(r(1), arr as i64);
    a.li(r(2), 8);
    a.li(r(3), 0);
    a.label("loop");
    a.ldq(r(4), r(1), 0);
    a.addq(r(3), r(4), r(3));
    a.lda(r(1), r(1), 8);
    a.subq(r(2), 1, r(2));
    a.bne(r(2), "loop");
    a.halt();
    let program = a.finish()?;

    let mut emu = Emulator::new(program);
    let mut opt = Optimizer::new(OptimizerConfig::default(), 4096, |_| 0);
    let mut cycle = 0u64;

    println!("{:<5} {:<28} outcome", "seq", "instruction");
    println!("{:-<70}", "");
    while let Step::Inst(d) = emu.step()? {
        // One instruction per bundle for a readable trace; the pipeline
        // normally renames four at a time.
        let renamed = opt.rename_bundle(
            cycle,
            &[RenameReq {
                d,
                mispredicted: false,
            }],
        );
        let ren = &renamed[0];
        let outcome = match ren.class {
            RenamedClass::Done if ren.resolved_early => "branch resolved early".to_string(),
            RenamedClass::Done if ren.load_removed => "load removed (RLE/SF)".to_string(),
            RenamedClass::Done => match ren.early_value {
                Some(v) => format!("executed early = {v:#x}"),
                None => "eliminated".to_string(),
            },
            cls => {
                let deps: Vec<String> = ren.srcs.iter().map(|p| p.to_string()).collect();
                format!("{cls:?}, deps [{}]", deps.join(", "))
            }
        };
        println!("{:<5} {:<28} {outcome}", d.seq, d.inst.to_string());
        // Model execution completing a few cycles later: feed values back.
        if let (Some(dst), true) = (ren.dst, ren.dst_new) {
            opt.complete(dst, d.result.unwrap_or(0), cycle + 5);
            opt.release(dst);
        }
        for &p in &ren.srcs {
            opt.release(p);
        }
        cycle += 1;
    }
    println!();
    let s = opt.stats();
    println!(
        "{} of {} instructions executed early; {} loads removed; {} branches resolved",
        s.executed_early, s.insts, s.loads_removed, s.branches_resolved_early
    );
    Ok(())
}
