//! Reproduces the paper's §5.2 analysis of `untoast` — the GSM
//! `Short_term_synthesis_filtering` loop over two 8-entry arrays. Because
//! both arrays fit trivially in the 128-entry Memory Bypass Cache, after
//! the first iteration all array accesses are eliminated and much of the
//! fixed-point arithmetic executes in the optimizer. This example also
//! shows how quickly the benefit collapses when the MBC shrinks — each
//! variant is just a different `RleSf` pass parameter (or no `RleSf` pass
//! at all).
//!
//! ```text
//! cargo run --release -p contopt-sim --example gsm_filter
//! ```

// Example code may panic on impossible conditions; the workspace
// unwrap/expect lints police the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use contopt_sim::{CpRa, EarlyExec, PassSet, RleSf, SimSession, ValueFeedback};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = contopt_sim::workloads::build("untst").expect("untst is in the suite");
    println!("workload: {} — {}", w.name, w.description);

    let base = SimSession::builder()
        .workload("untst")
        .insts(2_000_000)
        .build()?
        .run();
    println!();
    println!(
        "{:>12} {:>10} {:>12} {:>14}",
        "MBC entries", "speedup", "loads rem.", "exec early"
    );
    for entries in [0usize, 8, 32, 128, 512] {
        let mut passes = PassSet::new()
            .with(CpRa::default())
            .with(ValueFeedback::default())
            .with(EarlyExec);
        if entries > 0 {
            passes.push(RleSf {
                entries,
                ..RleSf::default()
            });
        }
        let r = SimSession::builder()
            .workload("untst")
            .pass_set(passes)
            .insts(2_000_000)
            .build()?
            .run();
        println!(
            "{:>12} {:>9.3}x {:>11.1}% {:>13.1}%",
            if entries == 0 {
                "off".to_string()
            } else {
                entries.to_string()
            },
            r.speedup_over(&base)?,
            r.optimizer.pct_loads_removed(),
            r.optimizer.pct_executed_early()
        );
    }
    Ok(())
}
