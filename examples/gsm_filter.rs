//! Reproduces the paper's §5.2 analysis of `untoast` — the GSM
//! `Short_term_synthesis_filtering` loop over two 8-entry arrays. Because
//! both arrays fit trivially in the 128-entry Memory Bypass Cache, after
//! the first iteration all array accesses are eliminated and much of the
//! fixed-point arithmetic executes in the optimizer. This example also
//! shows how quickly the benefit collapses when the MBC shrinks.
//!
//! ```text
//! cargo run --release -p contopt-experiments --example gsm_filter
//! ```

use contopt::OptimizerConfig;
use contopt_pipeline::{simulate, MachineConfig};
use contopt_workloads::build;

fn main() {
    let w = build("untst").expect("untst is in the suite");
    println!("workload: {} — {}", w.name, w.description);

    let base = simulate(MachineConfig::default_paper(), w.program.clone(), 2_000_000);
    println!();
    println!("{:>12} {:>10} {:>12} {:>14}", "MBC entries", "speedup", "loads rem.", "exec early");
    for entries in [0usize, 8, 32, 128, 512] {
        let cfg = if entries == 0 {
            // RLE/SF disabled entirely.
            MachineConfig::default_paper().with_optimizer(OptimizerConfig {
                enable_rle_sf: false,
                ..OptimizerConfig::default()
            })
        } else {
            MachineConfig::default_paper().with_optimizer(OptimizerConfig {
                mbc_entries: entries,
                ..OptimizerConfig::default()
            })
        };
        let r = simulate(cfg, w.program.clone(), 2_000_000);
        println!(
            "{:>12} {:>9.3}x {:>11.1}% {:>13.1}%",
            if entries == 0 { "off".to_string() } else { entries.to_string() },
            r.speedup_over(&base),
            r.optimizer.pct_loads_removed(),
            r.optimizer.pct_executed_early()
        );
    }
    println!();
    println!(
        "The filter state (two 8-entry arrays) is resident even in a tiny MBC;\n\
         the paper reports untst as its best case (speedup 1.28)."
    );
}
