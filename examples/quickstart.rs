//! Quickstart: assemble a small program, run it on the baseline machine and
//! on the machine with continuous optimization, and compare — all through
//! the `SimSession` builder.
//!
//! ```text
//! cargo run --release -p contopt-sim --example quickstart
//! ```

use contopt_sim::isa::{r, Asm};
use contopt_sim::{Pass, SimSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §2.4 motivating example: a loop summing an array, with a
    // loop-carried array index and a decrementing counter.
    let n = 2000u64;
    let mut a = Asm::new();
    let arr = a.data_quads(&(0..n).map(|i| i * 3 + 1).collect::<Vec<_>>());
    let out = a.data_zeros(8);
    a.li(r(1), arr as i64); //          array pointer
    a.li(r(2), n as i64); //            loop counter
    a.li(r(3), 0); //                   sum
    a.label("loop");
    a.ldq(r(4), r(1), 0); //            ld  [r1] -> r4
    a.addq(r(3), r(4), r(3)); //        sum += r4
    a.lda(r(1), r(1), 8); //            r1 += 8        (reassociates)
    a.subq(r(2), 1, r(2)); //           r2 -= 1        (reassociates)
    a.bne(r(2), "loop"); //             resolves early once r2 is known
    a.li(r(5), out as i64);
    a.stq(r(3), r(5), 0);
    a.halt();
    let program = a.finish()?;

    // The baseline machine: no passes registered.
    let base = SimSession::builder()
        .program(program.clone())
        .build()?
        .run();
    // The paper's default optimizer: all four passes.
    let opt = SimSession::builder()
        .program(program)
        .passes([
            Pass::cp_ra(),
            Pass::rle_sf(),
            Pass::value_feedback(),
            Pass::early_exec(),
        ])
        .build()?
        .run();

    println!(
        "baseline : {:>8} cycles, IPC {:.3}",
        base.pipeline.cycles,
        base.ipc()
    );
    println!(
        "optimized: {:>8} cycles, IPC {:.3}",
        opt.pipeline.cycles,
        opt.ipc()
    );
    println!("speedup  : {:.3}x", opt.speedup_over(&base)?);
    println!();
    println!(
        "executed early     : {:5.1}% of instructions",
        opt.optimizer.pct_executed_early()
    );
    println!(
        "addresses generated: {:5.1}% of memory ops",
        opt.optimizer.pct_mem_addr_generated()
    );
    println!(
        "branches resolved  : {} (of {} conditional-branch instances)",
        opt.optimizer.branches_resolved_early, base.predictor.cond_predictions
    );
    Ok(())
}
